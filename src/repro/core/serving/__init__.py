"""Layered async serving stack around the recommendation engine.

The online deployment loop (:mod:`repro.core.online`) replays one
thread at a time; this package decomposes the same engine into the
layers a real service needs:

* :mod:`~repro.core.serving.clock` — a deterministic virtual clock that
  drives asyncio under simulated time, so load runs are seeded and
  bit-reproducible;
* :mod:`~repro.core.serving.ingest` — bounded-queue admission control
  over event submission and question queries, composing with the
  :class:`~repro.core.resilience.StreamGuard` quarantine gate;
* :mod:`~repro.core.serving.batcher` — a micro-batching scheduler that
  coalesces concurrent queries under a max-latency / max-batch-size
  policy;
* :mod:`~repro.core.serving.service` — the synchronous
  :class:`~repro.core.serving.service.ServingCore` engine (refits,
  routing, state) shared with the legacy replay loop, plus the async
  :class:`~repro.core.serving.service.RecommendationService` facade
  exposing submit_event / route_question / health / metrics;
* :mod:`~repro.core.serving.harness` — the seeded concurrent load
  harness that replays :mod:`repro.forum.traffic` arrival schedules
  through the service and reports latency percentiles and throughput.
"""

from .batcher import BatchPolicy, MicroBatcher
from .cache import PredictionCache
from .clock import VirtualClock
from .harness import LoadReport, run_load
from .ingest import AdmissionConfig, AdmissionError, IngestGate
from .service import (
    CostModel,
    RecommendationService,
    RouteResponse,
    ServiceConfig,
    ServingCore,
    SubmitResult,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionError",
    "BatchPolicy",
    "CostModel",
    "IngestGate",
    "LoadReport",
    "MicroBatcher",
    "PredictionCache",
    "RecommendationService",
    "RouteResponse",
    "ServiceConfig",
    "ServingCore",
    "SubmitResult",
    "VirtualClock",
    "run_load",
]
