"""Refit-epoch-keyed prediction cache for the serving hot path.

Between two refits the frozen state is immutable, so a (user, thread)
pair's feature row — and therefore the three model-head outputs — is a
pure function of the pair.  Repeat queries against the same epoch can
skip featurization and the heads entirely; only the LP tail (which
reads the *live* load tracker) must always rerun.  The serving core
clears the cache on every refit, so staleness is structurally
impossible rather than TTL-managed.

Bounded LRU over pairs: one entry is one (user, thread) triple, so the
memory envelope is ``max_pairs * 3`` floats plus key overhead.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PredictionCache"]


class PredictionCache:
    """LRU ``(user, thread_id) -> (answer, votes, response_time)``.

    ``max_pairs <= 0`` disables the cache entirely (every lookup
    misses, nothing is stored) so callers can keep one code path.
    """

    def __init__(self, max_pairs: int = 0):
        self.max_pairs = int(max_pairs)
        self._store: OrderedDict[
            tuple[int, int], tuple[float, float, float]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, user: int, thread_id: int):
        """The cached triple, or ``None`` (counts a hit or a miss)."""
        if self.max_pairs <= 0:
            self.misses += 1
            return None
        value = self._store.get((user, thread_id))
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end((user, thread_id))
        self.hits += 1
        return value

    def put(
        self, user: int, thread_id: int, answer: float, votes: float,
        response_time: float,
    ) -> None:
        if self.max_pairs <= 0:
            return
        key = (user, thread_id)
        self._store[key] = (answer, votes, response_time)
        self._store.move_to_end(key)
        while len(self._store) > self.max_pairs:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (refit boundary); counters keep running."""
        self._store.clear()

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._store),
            "max_pairs": self.max_pairs,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
