"""Micro-batching scheduler for concurrent question queries.

Routing cost is dominated by per-call overhead (feature staging, model
head dispatch) that amortizes almost perfectly over a batch: scoring 8
questions in one fused ``predict_batch`` costs far less than 8 single
calls.  The :class:`MicroBatcher` buys that amortization with a bounded
latency tax: the first query of a batch opens a collection window, and
the batch is dispatched when either ``max_batch`` queries have
coalesced or ``max_wait_s`` of (virtual or real) time has passed —
whichever comes first.  Under light load every query ships alone after
at most ``max_wait_s``; under a burst the batch fills instantly and the
wait never triggers.

The handler is a synchronous callable ``list[payload] -> list[result]``
— typically :meth:`ServingCore.process_query_batch` fusing retrieval +
ranking + LP across the batch against the bound
:class:`~repro.core.routing.QuestionRouter` (a
:class:`~repro.core.sharding.ShardedRouter`-backed handler slots in the
same way via its ``route_batch``).  An optional ``cost`` function
charges a simulated service time per batch before dispatch, which is
what makes queueing dynamics deterministic under the virtual clock.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable

from ... import perf

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy: dispatch at ``max_batch`` or ``max_wait_s``."""

    max_batch: int = 8
    max_wait_s: float = 0.002

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


class MicroBatcher:
    """Coalesces queued submissions into bounded batches.

    Feed it either through :meth:`submit` (owns an internal queue) or
    by passing the ``queue`` a gate already fills with
    ``(payload, future)`` pairs.  One worker task (:meth:`run`, or
    :meth:`start`/:meth:`stop`) collects batches and resolves each
    future with the handler's matching result; a handler exception
    fails every future of its batch.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        handler: Callable[[list], list],
        *,
        queue: asyncio.Queue | None = None,
        cost: Callable[[int], float] | None = None,
        on_dispatch: Callable[[list], Awaitable[None]] | None = None,
    ):
        self.policy = policy
        self.handler = handler
        self.queue = queue if queue is not None else asyncio.Queue()
        self.cost = cost
        self.on_dispatch = on_dispatch
        self.n_batches = 0
        self.n_items = 0
        self._task: asyncio.Task | None = None

    async def submit(self, payload):
        """Enqueue one payload; resolves with the handler's result."""
        future = asyncio.get_running_loop().create_future()
        await self.queue.put((payload, future))
        return await future

    def start(self) -> asyncio.Task:
        self._task = asyncio.get_running_loop().create_task(self.run())
        return self._task

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def run(self) -> None:
        """Worker loop: collect a batch, dispatch, resolve futures."""
        while True:
            batch = [await self.queue.get()]
            batch = await self._fill(batch)
            await self._dispatch(batch)

    async def _fill(self, batch: list) -> list:
        """Collect up to ``max_batch`` items within the wait window."""
        policy = self.policy
        if policy.max_batch == 1:
            return batch
        # Items already queued coalesce for free, before any waiting.
        while len(batch) < policy.max_batch and not self.queue.empty():
            batch.append(self.queue.get_nowait())
        if policy.max_wait_s <= 0:
            return batch
        loop = asyncio.get_running_loop()
        deadline = loop.time() + policy.max_wait_s
        while len(batch) < policy.max_batch:
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self.queue.get(), timeout)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _dispatch(self, batch: list) -> None:
        self.n_batches += 1
        self.n_items += len(batch)
        perf.incr("serving.query_batches")
        perf.gauge_max("serving.peak_batch_size", len(batch))
        if self.cost is not None:
            seconds = self.cost(len(batch))
            if seconds > 0:
                await asyncio.sleep(seconds)
        if self.on_dispatch is not None:
            await self.on_dispatch(batch)
        payloads = [payload for payload, _ in batch]
        try:
            results = self.handler(payloads)
        except Exception as exc:  # noqa: BLE001 — propagate to submitters
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    @property
    def mean_batch_size(self) -> float:
        return self.n_items / self.n_batches if self.n_batches else 0.0
