"""Service core and async facade of the recommendation engine.

Two classes split what used to be one monolithic loop:

* :class:`ServingCore` — the synchronous engine: fixed-grid refits
  (plain and recovery-wrapped), candidate preparation, fused
  rank+route, and window-state bookkeeping.  The legacy
  :class:`~repro.core.online.OnlineRecommendationLoop` is now a thin
  chronological driver over this core, so the replay CLI and every
  existing test exercise exactly the code the service serves with.
* :class:`RecommendationService` — the asyncio facade: bounded-queue
  admission (:mod:`~repro.core.serving.ingest`), StreamGuard-guarded
  event ingestion, micro-batched query routing
  (:mod:`~repro.core.serving.batcher`), and health/metrics endpoints
  with latency percentiles from :class:`repro.perf.LatencyHistogram`.

The engine-side configs (:class:`OnlineConfig`) and the replay report
(:class:`OnlineReport`) live here and are re-exported from
:mod:`repro.core.online` for compatibility.

Determinism: the service mutates one :class:`ServingCore` from a
single-threaded event loop, the StreamGuard consumes events in queue
order, and all waiting runs on simulated time, so a seeded traffic
schedule replays to identical responses, admissions and latency
percentiles on every run.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field

import numpy as np

from ... import perf
from ...forum.dataset import ForumDataset
from ...forum.models import Thread
from ...ml.ranking import mean_reciprocal_rank, ndcg_at_k, precision_at_k
from ..pipeline import ForumPredictor, PredictorConfig
from ..resilience import (
    DegradationReport,
    ResilienceConfig,
    StreamGuard,
)
from ..retrieval import CandidateRetriever, RetrievalConfig
from ..routing import QuestionRouter, UserLoadTracker
from ..sharding import ShardedRouter
from ..state import ForumState
from .batcher import BatchPolicy, MicroBatcher
from .cache import PredictionCache
from .ingest import AdmissionConfig, IngestGate

__all__ = [
    "OnlineConfig",
    "OnlineReport",
    "ServingCore",
    "CostModel",
    "ServiceConfig",
    "SubmitResult",
    "RouteResponse",
    "RecommendationService",
]

# A refit window must hold at least this many threads and answers for
# the models to be trainable at all.
_MIN_THREADS = 10
_MIN_ANSWERS = 10


@dataclass(frozen=True)
class OnlineConfig:
    """Deployment-loop parameters."""

    refit_interval_hours: float = 120.0
    window_hours: float = 480.0  # sliding feature/training window
    warmup_hours: float = 120.0  # history required before routing starts
    epsilon: float = 0.3
    tradeoff: float = 0.2
    default_capacity: float = 5.0
    top_k: int = 5
    refit_strategy: str = "incremental"  # or "rebuild"
    warm_start: bool = True
    # Worker processes for the three per-task model fits inside each
    # refit; None defers to REPRO_N_JOBS (default serial).
    n_jobs: int | None = None
    # Two-stage candidate retrieval for the routing/ranking hot path;
    # None keeps the dense score-every-candidate behaviour.
    retrieval: RetrievalConfig | None = None
    # Maintain an incremental per-user answer-load counter and enforce
    # it as remaining capacity in every LP (previously the online loop
    # routed without load constraints).
    track_load: bool = True
    load_window_hours: float = 24.0
    # Shard-parallel candidate featurization in the serving hot path:
    # >1 fans each query batch out over a ShardedRouter (bit-identical
    # canonical merge); 1 keeps the single-process extractor.
    serving_shards: int = 1
    shard_mode: str = "inline"  # or "process" (persistent workers)
    shard_transport: str = "shm"  # or "pickle"; process mode only
    # Refit-epoch-keyed (user, thread) prediction cache: repeat queries
    # against the same epoch skip featurization and the model heads.
    # 0 disables; entries are three floats each.
    feature_cache_pairs: int = 0

    def __post_init__(self):
        if self.refit_interval_hours <= 0 or self.window_hours <= 0:
            raise ValueError("intervals must be positive")
        if self.warmup_hours < 0:
            raise ValueError("warmup_hours must be non-negative")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.refit_strategy not in ("incremental", "rebuild"):
            raise ValueError(
                "refit_strategy must be 'incremental' or 'rebuild'"
            )
        if self.refit_strategy == "incremental" and not self.warm_start:
            raise ValueError(
                "incremental refits require warm_start: the state embeds "
                "topic vectors, so the topic model cannot be refit cold"
            )
        if self.load_window_hours <= 0:
            raise ValueError("load_window_hours must be positive")
        if self.serving_shards < 1:
            raise ValueError("serving_shards must be >= 1")
        if self.shard_mode not in ("inline", "process"):
            raise ValueError("shard_mode must be 'inline' or 'process'")
        if self.shard_transport not in ("shm", "pickle"):
            raise ValueError("shard_transport must be 'shm' or 'pickle'")
        if self.feature_cache_pairs < 0:
            raise ValueError("feature_cache_pairs must be non-negative")


@dataclass
class OnlineReport:
    """Outcome of one simulated deployment.

    ``rankings`` orders candidates by predicted answer probability (the
    task-(i) model) and is scored against who actually answered;
    ``routed_scores`` records the LP objective of each routed pick.
    """

    n_questions_seen: int = 0
    n_routed: int = 0
    n_refits: int = 0
    rankings: list[tuple[list[int], set[int]]] = field(default_factory=list)
    routed_scores: list[float] = field(default_factory=list)
    # Populated only by resilient runs: what was dropped/repaired/retried.
    degradation: DegradationReport | None = None

    @property
    def hit_rate_at_1(self) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([precision_at_k(r, rel, 1) for r, rel in self.rankings])
        )

    def precision_at(self, k: int) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([precision_at_k(r, rel, k) for r, rel in self.rankings])
        )

    @property
    def mrr(self) -> float:
        if not self.rankings:
            return float("nan")
        return mean_reciprocal_rank(self.rankings)

    def ndcg_at(self, k: int) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([ndcg_at_k(r, rel, k) for r, rel in self.rankings])
        )


@dataclass
class _PreparedQuery:
    """One query after candidate preparation, ready for fused scoring."""

    thread: Thread
    now: float
    candidates: list[int]
    pool: np.ndarray | None
    rank_candidates: list[int]

    @property
    def rank_pairs(self) -> list[tuple[int, Thread]]:
        return [(u, self.thread) for u in self.rank_candidates]


@dataclass
class RouteResponse:
    """Answer of the service to one routed question."""

    question_id: int
    # "ok" | "no_recommendation" | "not_ready" | "no_candidates"
    # | "rejected" — every query gets a response; "rejected" is the
    # admission-control shed path, the rest came out of the engine.
    status: str
    ranked: list[int] = field(default_factory=list)
    routed: list[tuple[int, float]] = field(default_factory=list)
    score: float | None = None
    degraded: bool = False
    detail: str = ""
    arrival_s: float = float("nan")
    completed_s: float = float("nan")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.arrival_s


@dataclass
class SubmitResult:
    """Answer of the service to one event submission.

    StreamGuard faults surface here as *degraded* responses — the
    submitter always hears back what happened to its event ("repaired",
    "quarantined", "dropped"), never silence.
    """

    thread_id: int
    # "admitted" | "repaired" | "quarantined" | "dropped" | "rejected"
    status: str
    degraded: bool = False
    actions: tuple[str, ...] = ()
    detail: str = ""
    arrival_s: float = float("nan")
    completed_s: float = float("nan")

    @property
    def ok(self) -> bool:
        return self.status in ("admitted", "repaired")

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.arrival_s


class ServingCore:
    """Synchronous refit/route/state engine behind every serving surface.

    Owns the predictor, the live window state, the router (plus
    retriever and load tracker) and the fixed refit grid.  The legacy
    replay loop drives it one thread at a time; the async service
    drives it from its ingestion worker and micro-batcher.  All methods
    are synchronous and must be called from one thread (or one event
    loop) at a time.
    """

    def __init__(
        self,
        predictor_config: PredictorConfig | None = None,
        online_config: OnlineConfig | None = None,
        resilience_config: ResilienceConfig | None = None,
    ):
        self.predictor_config = predictor_config or PredictorConfig()
        self.online_config = online_config or OnlineConfig()
        self.resilience_config = resilience_config
        self._predictor: ForumPredictor | None = None
        self._state: ForumState | None = None
        self._router: QuestionRouter | None = None
        self._candidates: list[int] = []
        # Shared across refit strategies: the retriever persists so its
        # indices refresh (and MF warm-starts) instead of rebuilding,
        # and the load tracker accumulates the replayed answer events.
        self._retriever: CandidateRetriever | None = None
        self._load = UserLoadTracker(self.online_config.load_window_hours)
        # Resilient-path bookkeeping: the last window that refit cleanly
        # (the fallback snapshot) and the consecutive-failure count that
        # drives the schedule-level backoff.
        self._last_good: ForumDataset | None = None
        self._refit_failures = 0
        # Fixed refit grid, anchored to the stream clock.
        self.next_refit = self.online_config.warmup_hours
        self._skip_refits = 0
        # Admitted events, in admission order; the training-window
        # source for event-driven (service / resilient-replay) refits.
        self.accepted: list[Thread] = []
        self.guard: StreamGuard | None = None
        # The refit entry point recovery wraps; tests may swap it to
        # inject refit failures.
        self.refit_hook = self.refit
        # Serving hot-path accelerators: the shard fan-out (built on the
        # first router bind when serving_shards > 1, rebound in place on
        # later refits) and the epoch-keyed prediction cache (cleared on
        # every bind — static rows are immutable only within an epoch).
        self.refit_epoch = 0
        self._sharded: ShardedRouter | None = None
        self._cache = PredictionCache(self.online_config.feature_cache_pairs)

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def from_artifacts(
        cls,
        predictor: ForumPredictor,
        candidates,
        *,
        online_config: OnlineConfig | None = None,
        resilience_config: ResilienceConfig | None = None,
    ) -> "ServingCore":
        """A core serving a prefitted predictor, warmed immediately.

        Binds the router (and shard fan-out, per ``online_config``)
        without replaying the training window, and parks the refit grid
        at infinity — the scale path fits offline and serves frozen.
        """
        if predictor.extractor is None:
            raise RuntimeError("predictor is not fitted")
        core = cls(predictor.config, online_config, resilience_config)
        core._predictor = predictor
        core._bind_router(candidates)
        core.next_refit = float("inf")
        return core

    def close(self) -> None:
        """Release shard workers and their shm blocks (idempotent).

        Only resources the core itself owns: the predictor, state and
        router are plain in-process objects and need no teardown.
        """
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "ServingCore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- readiness -----------------------------------------------------------

    @property
    def warmed(self) -> bool:
        """True once a router has been bound by a successful refit."""
        return self._router is not None

    def attach_guard(
        self, config: ResilienceConfig, report: DegradationReport
    ) -> StreamGuard:
        """Create (or replace) the ingestion StreamGuard."""
        self.guard = StreamGuard(config, report)
        return self.guard

    # -- refitting -----------------------------------------------------------

    def _feasible(self, n_threads: int, n_answers: int) -> bool:
        return n_threads >= _MIN_THREADS and n_answers >= _MIN_ANSWERS

    def refit(self, dataset: ForumDataset, now: float) -> bool:
        """Refit on the window ending at ``now``; False when infeasible."""
        cfg = self.online_config
        if self._predictor is None:
            self._predictor = ForumPredictor(self.predictor_config)
        predictor = self._predictor
        start = max(0.0, now - cfg.window_hours)
        if cfg.refit_strategy == "rebuild":
            window = dataset.threads_in_window(start, now)
            if not self._feasible(len(window), window.num_answers):
                return False
            with perf.timer("online.refit"):
                predictor.fit(
                    window, warm_start=cfg.warm_start, n_jobs=cfg.n_jobs
                )
            candidates = window.answerers
        elif self._state is None:
            # First feasible refit: fit topics once, then bootstrap the
            # long-lived state from the current window.
            window = dataset.threads_in_window(start, now)
            if not self._feasible(len(window), window.num_answers):
                return False
            with perf.timer("online.refit"):
                predictor.fit_topics(window)
                self._state = predictor.build_state(window)
                predictor.refit_from_state(self._state, n_jobs=cfg.n_jobs)
            candidates = self._state.answerers
        else:
            self._state.evict(start)
            if not self._feasible(len(self._state), self._state.num_answers):
                return False
            with perf.timer("online.refit"):
                predictor.refit_from_state(self._state, n_jobs=cfg.n_jobs)
            candidates = self._state.answerers
        self._bind_router(candidates)
        return True

    def _bind_router(self, candidates) -> None:
        cfg = self.online_config
        self._router = QuestionRouter(
            self._predictor,
            epsilon=cfg.epsilon,
            default_capacity=cfg.default_capacity,
            load_window_hours=cfg.load_window_hours,
            retriever=self._bind_retriever(),
            load_tracker=self._load if cfg.track_load else None,
        )
        self._candidates = sorted(candidates)
        self.refit_epoch += 1
        self._cache.clear()
        if cfg.serving_shards > 1:
            if self._sharded is None:
                # retrieval=None: pools come from the core's retriever
                # parent-side; the shards only featurize.
                self._sharded = ShardedRouter(
                    self._predictor,
                    cfg.serving_shards,
                    epsilon=cfg.epsilon,
                    default_capacity=cfg.default_capacity,
                    retrieval=None,
                    mode=cfg.shard_mode,
                    transport=cfg.shard_transport,
                )
            else:
                self._sharded.rebind(self._predictor)

    def _bind_retriever(self) -> CandidateRetriever | None:
        """Build or refresh the candidate indices after a refit.

        The retriever outlives individual refits: the topic index is
        diffed row-wise against the new frozen tables, the MF embedding
        warm-starts from its previous factors, and (on the incremental
        arm) the recency index rides the state's append/evict events.
        """
        cfg = self.online_config
        if cfg.retrieval is None or cfg.retrieval.mode != "two_stage":
            return None
        if self._retriever is None:
            self._retriever = CandidateRetriever(
                cfg.retrieval, self._predictor.topics
            )
        else:
            self._retriever.topics = self._predictor.topics
        if self._state is not None:
            self._retriever.attach(self._state)
        else:
            self._retriever.detach()
        extractor = self._predictor.extractor
        self._retriever.refresh(extractor.frozen, extractor.window)
        return self._retriever

    def maybe_refit(
        self, dataset: ForumDataset, now: float, report: OnlineReport
    ) -> None:
        """Fixed-grid refit check of the plain replay path.

        Advances on the grid, catching up over gaps, so the cadence
        never drifts with arrival times.
        """
        cfg = self.online_config
        if now >= self.next_refit:
            if self.refit_hook(dataset, now):
                report.n_refits += 1
            while self.next_refit <= now:
                self.next_refit += cfg.refit_interval_hours

    def maybe_refit_resilient(
        self,
        now: float,
        report: OnlineReport,
        degradation: DegradationReport,
        res: ResilienceConfig,
    ) -> None:
        """Grid check with bounded retry, fallback and backoff.

        The training window is built lazily from :attr:`accepted` only
        when a refit is actually attempted; the end-exclusive window
        slice excludes an event sitting exactly at ``now``, exactly as
        the plain path excludes it from the full dataset.
        """
        cfg = self.online_config
        if now >= self.next_refit:
            if self._skip_refits > 0:
                self._skip_refits -= 1
                degradation.add(
                    -1, -1, "refit:backoff_skipped",
                    f"{self._skip_refits} grid intervals of backoff remain",
                )
            else:
                ok = self.refit_with_recovery(
                    ForumDataset(self.accepted), now, degradation, res
                )
                if ok:
                    report.n_refits += 1
                elif self._refit_failures > 0:
                    self._skip_refits = min(
                        res.backoff_base ** (self._refit_failures - 1),
                        res.max_backoff_intervals,
                    )
            while self.next_refit <= now:
                self.next_refit += cfg.refit_interval_hours

    def refit_with_recovery(
        self,
        window_dataset: ForumDataset,
        now: float,
        degradation: DegradationReport,
        res: ResilienceConfig,
    ) -> bool:
        """Bounded retry around :meth:`refit`; snapshot fallback on failure.

        Retries cover transient faults (worker death, allocation
        failure); a deterministic poison — e.g.
        :class:`~repro.core.resilience.NonFiniteFeatureError` from a
        corrupt window — fails every attempt and lands in the fallback,
        which restores the last cleanly fitted window and retrains on
        it.  Threads admitted after that snapshot are dropped from the
        training window (they remain routed); serving never stops.
        """
        cfg = self.online_config
        prior_state = self._state
        attempts = 0
        while True:
            try:
                ok = self.refit_hook(window_dataset, now)
            except Exception as exc:  # noqa: BLE001 — recovery boundary
                attempts += 1
                self._state = prior_state
                perf.incr("resilience.refit_retries")
                degradation.add(
                    -1, -1, "refit:retry",
                    f"attempt {attempts}: {type(exc).__name__}: {exc}"[:200],
                )
                if attempts <= res.max_refit_retries:
                    continue
                self._refit_failures += 1
                self._fallback_to_snapshot(degradation, exc)
                return False
            break
        if ok:
            self._refit_failures = 0
            # Snapshot the window that just fitted cleanly: for the
            # incremental arm the live state, for rebuild the slice.
            if self._state is not None:
                self._last_good = self._state.to_dataset()
            else:
                self._last_good = window_dataset.threads_in_window(
                    max(0.0, now - cfg.window_hours), now
                )
        return ok

    def _fallback_to_snapshot(
        self, degradation: DegradationReport, exc: Exception
    ) -> None:
        """Restore the last-good window and retrain, keeping serving up."""
        cfg = self.online_config
        if self._last_good is None or self._predictor is None:
            # Nothing fitted cleanly yet: flush the poisoned bootstrap
            # state and let a later grid point try again once the
            # window has slid past the corrupt threads.
            self._state = None
            degradation.add(
                -1, -1, "refit:fallback_unavailable",
                f"{type(exc).__name__} before any successful refit",
            )
            return
        perf.incr("resilience.refit_fallbacks")
        degradation.add(
            -1, -1, "refit:fallback",
            f"{type(exc).__name__}: restored last-good window of "
            f"{len(self._last_good)} threads",
        )
        try:
            if cfg.refit_strategy == "rebuild":
                self._predictor.fit(
                    self._last_good,
                    warm_start=cfg.warm_start,
                    n_jobs=cfg.n_jobs,
                )
                candidates = self._last_good.answerers
            else:
                self._state = ForumState.from_dataset(
                    self._last_good, self._predictor.topics
                )
                self._predictor.refit_from_state(
                    self._state, n_jobs=cfg.n_jobs
                )
                candidates = self._state.answerers
            self._bind_router(candidates)
        except Exception as inner:  # noqa: BLE001 — keep stale router
            degradation.add(
                -1, -1, "refit:fallback_unavailable",
                f"snapshot retrain failed ({type(inner).__name__}); "
                "continuing with the previous router",
            )

    # -- state bookkeeping ---------------------------------------------------

    def observe(self, thread: Thread) -> None:
        """Fold a routed thread into the live window (plain path)."""
        if self.online_config.track_load:
            self._load.observe_thread(thread)
        if self._state is not None:
            self._state.append(thread)

    def observe_admitted(
        self, thread: Thread, degradation: DegradationReport
    ) -> None:
        """Fold an admitted thread in, tolerating stale clocks."""
        if self.online_config.track_load:
            self._load.observe_thread(thread)
        if self._state is not None:
            if thread.created_at >= self._state.last_created:
                self._state.append(thread)
            else:  # unreachable once admitted; belt and braces
                seq = self.guard._seq if self.guard is not None else -1
                degradation.add(
                    seq, thread.thread_id, "dropped:stale_event",
                    "behind the live state clock after admission",
                )

    # -- routing -------------------------------------------------------------

    def prepare_query(
        self, thread: Thread, now: float, report: OnlineReport
    ) -> tuple[_PreparedQuery | None, str]:
        """Candidate/pool preparation for one query.

        Returns ``(None, status)`` when the query cannot be scored:
        before warmup or the first refit (``"not_ready"``), with nobody
        to recommend (``"no_candidates"``), or with an empty retrieval
        pool and dense fallback disabled (``"no_candidates"``).
        """
        cfg = self.online_config
        if self._router is None or now < cfg.warmup_hours:
            return None, "not_ready"
        report.n_questions_seen += 1
        candidates = [u for u in self._candidates if u != thread.asker]
        if not candidates:
            return None, "no_candidates"
        # Two-stage retrieval: one pool per question, shared by the
        # ranking and the LP; dense mode scores every candidate.
        pool = None
        rank_candidates = candidates
        if self._router.retriever is not None:
            pool = self._router.candidate_pool(thread, candidates)
            if pool.size:
                rank_candidates = [int(u) for u in pool]
            elif not self._router.retriever.config.dense_fallback:
                return None, "no_candidates"
            # Empty pool with fallback enabled: rank densely here and
            # let recommend() take its own dense retry on the same pool.
        return (
            _PreparedQuery(thread, now, candidates, pool, rank_candidates),
            "ok",
        )

    def _cached_predictions(
        self, prepared: _PreparedQuery
    ) -> dict[str, np.ndarray] | None:
        """The query's full prediction set from cache, or ``None``.

        All-or-nothing: a single missing (user, thread) pair sends the
        whole query down the compute path, so a response is never
        assembled from a mix of cached and fresh rows.
        """
        cache = self._cache
        if cache.max_pairs <= 0:
            return None
        tid = prepared.thread.thread_id
        triples = []
        for user in prepared.rank_candidates:
            triple = cache.get(user, tid)
            if triple is None:
                return None
            triples.append(triple)
        arr = np.asarray(triples)
        return {
            "answer": arr[:, 0],
            "votes": arr[:, 1],
            "response_time": arr[:, 2],
        }

    def _cache_store(
        self, prepared: _PreparedQuery, predictions: dict[str, np.ndarray]
    ) -> None:
        if self._cache.max_pairs <= 0:
            return
        tid = prepared.thread.thread_id
        answer = predictions["answer"]
        votes = predictions["votes"]
        response_time = predictions["response_time"]
        for j, user in enumerate(prepared.rank_candidates):
            self._cache.put(
                user,
                tid,
                float(answer[j]),
                float(votes[j]),
                float(response_time[j]),
            )

    def predict_prepared(
        self, prepared_list: list[_PreparedQuery]
    ) -> list[dict[str, np.ndarray]]:
        """Model predictions for a refit segment of prepared queries.

        The single scoring path behind :meth:`route` and the fused
        batch flush.  Cache-hit queries skip compute entirely; every
        miss in the segment is featurized together — ONE shard scatter
        for the whole segment when sharding is on, one
        ``feature_matrix`` call otherwise — and the model heads run
        once over the stacked rows.  With sharding off and the cache
        empty this reduces exactly to ``predict_batch`` over the
        concatenated rank pairs, which is what pins bit-identity.
        """
        predictor = self._router.predictor
        results: list[dict[str, np.ndarray] | None] = [None] * len(
            prepared_list
        )
        missed: list[int] = []
        for i, prepared in enumerate(prepared_list):
            cached = self._cached_predictions(prepared)
            if cached is not None:
                results[i] = cached
            else:
                missed.append(i)
        if missed:
            with perf.timer("online.rank"):
                sizes = [
                    len(prepared_list[i].rank_candidates) for i in missed
                ]
                if self._sharded is not None:
                    rows = self._sharded.feature_rows(
                        [prepared_list[i].thread for i in missed],
                        [
                            np.asarray(
                                prepared_list[i].rank_candidates,
                                dtype=np.int64,
                            )
                            for i in missed
                        ],
                    )
                    perf.incr("serving.shard_scatters")
                    x = np.concatenate(
                        [r[1] for r in rows if r[1] is not None], axis=0
                    )
                else:
                    pairs: list[tuple[int, Thread]] = []
                    for i in missed:
                        pairs.extend(prepared_list[i].rank_pairs)
                    x = predictor.extractor.feature_matrix(pairs)
                horizons = np.concatenate(
                    [
                        np.full(
                            size,
                            float(
                                predictor._horizons(
                                    [prepared_list[i].thread]
                                )[0]
                            ),
                        )
                        for i, size in zip(missed, sizes)
                    ]
                )
                predictions = predictor.predict_matrix(x, horizons)
            start = 0
            for i, size in zip(missed, sizes):
                sliced = {
                    key: values[start : start + size]
                    for key, values in predictions.items()
                }
                results[i] = sliced
                self._cache_store(prepared_list[i], sliced)
                start += size
        return results

    def finish_query(
        self,
        prepared: _PreparedQuery,
        predictions: dict[str, np.ndarray],
        report: OnlineReport,
        degradation: DegradationReport | None = None,
    ) -> RouteResponse:
        """Ranking + Sec.-V LP from already-computed predictions."""
        cfg = self.online_config
        thread = prepared.thread
        scores = predictions["answer"]
        degraded = False
        if degradation is not None:
            bad = ~np.isfinite(scores)
            if bad.any():
                degradation.add(
                    -1, thread.thread_id, "masked:nonfinite_score",
                    f"{int(bad.sum())} of {len(scores)} candidate scores",
                )
                # Mask for the ranking only; the LP receives the raw
                # predictions, exactly as when it recomputes them.
                scores = np.where(bad, -np.inf, scores)
                degraded = True
        order = np.argsort(-scores, kind="stable")
        ranked = [prepared.rank_candidates[i] for i in order[: cfg.top_k]]
        actual = set(thread.answerers)
        if actual:
            report.rankings.append((ranked, actual))
        # Routing pick: the Sec.-V LP over the eligible set (the pool,
        # when two-stage retrieval already narrowed it), reusing the
        # fused predictions instead of re-scoring the same pairs.
        with perf.timer("online.route"):
            result = self._router.recommend(
                thread,
                prepared.candidates,
                tradeoff=cfg.tradeoff,
                pool=prepared.pool,
                predictions=predictions,
            )
        if result is None:
            return RouteResponse(
                thread.thread_id,
                "no_recommendation",
                ranked=ranked,
                degraded=degraded,
            )
        top_user = result.ranked_users()[0][0]
        idx = int(np.flatnonzero(result.users == top_user)[0])
        score = float(result.scores[idx])
        if degradation is not None and not math.isfinite(score):
            degradation.add(
                -1, thread.thread_id, "masked:nonfinite_score",
                "routing objective not finite; pick not recorded",
            )
            return RouteResponse(
                thread.thread_id,
                "no_recommendation",
                ranked=ranked,
                degraded=True,
                detail="routing objective not finite",
            )
        report.n_routed += 1
        report.routed_scores.append(score)
        return RouteResponse(
            thread.thread_id,
            "ok",
            ranked=ranked,
            routed=result.ranked_users(),
            score=score,
            degraded=degraded or result.dense_fallback,
        )

    def route(
        self,
        thread: Thread,
        now: float,
        report: OnlineReport,
        degradation: DegradationReport | None = None,
    ) -> RouteResponse:
        """Rank + route one question against the current model."""
        prepared, status = self.prepare_query(thread, now, report)
        if prepared is None:
            return RouteResponse(thread.thread_id, status)
        # Who-will-answer ranking: candidates by predicted a_uq
        # (batch-featurized across the whole candidate set).
        predictions = self.predict_prepared([prepared])[0]
        perf.incr("online.candidate_pairs", len(prepared.rank_candidates))
        return self.finish_query(prepared, predictions, report, degradation)

    def process_query_batch(
        self,
        threads: list[Thread],
        report: OnlineReport,
        degradation: DegradationReport | None = None,
        res: ResilienceConfig | None = None,
    ) -> list[RouteResponse]:
        """Route a coalesced batch of queries with fused scoring.

        Queries are processed in arrival order.  Within a *segment* —
        a maximal run of queries with no refit grid point between them
        — candidate featurization and model scoring fuse into one
        ``predict_batch`` call across every (candidate, question) pair
        of the segment; a due refit flushes the open segment first, so
        results are bit-identical to routing the same queries one at a
        time.
        """
        responses: list[RouteResponse | None] = [None] * len(threads)
        segment: list[tuple[int, _PreparedQuery]] = []

        def flush() -> None:
            if not segment:
                return
            prepared_list = [prepared for _, prepared in segment]
            predictions = self.predict_prepared(prepared_list)
            perf.incr(
                "online.candidate_pairs",
                sum(len(p.rank_candidates) for p in prepared_list),
            )
            perf.incr("serving.fused_queries", len(segment))
            for (idx, prepared), preds in zip(segment, predictions):
                responses[idx] = self.finish_query(
                    prepared, preds, report, degradation
                )
            segment.clear()

        for idx, thread in enumerate(threads):
            now = thread.created_at
            if now >= self.next_refit and degradation is not None:
                # A refit changes the model mid-batch: flush queries
                # prepared against the old one before it happens.
                flush()
                self.maybe_refit_resilient(
                    now,
                    report,
                    degradation,
                    res or self.resilience_config or ResilienceConfig(),
                )
            prepared, status = self.prepare_query(thread, now, report)
            if prepared is None:
                responses[idx] = RouteResponse(thread.thread_id, status)
            else:
                segment.append((idx, prepared))
        flush()
        return responses

    def process_event(
        self,
        thread: Thread,
        report: OnlineReport,
        degradation: DegradationReport,
        res: ResilienceConfig,
    ) -> tuple[Thread | None, tuple[str, ...]]:
        """Guard, record and fold one submitted event.

        Returns the admitted thread (None when quarantined/dropped)
        plus the guard/degradation actions this event triggered, so the
        caller can answer the submitter truthfully.
        """
        if self.guard is None:
            self.attach_guard(res, degradation)
        before = len(degradation.records)
        admitted = self.guard.admit(thread)
        actions = tuple(
            record.action for record in degradation.records[before:]
        )
        if admitted is None:
            return None, actions
        self.accepted.append(admitted)
        now = admitted.created_at
        self.maybe_refit_resilient(now, report, degradation, res)
        self.observe_admitted(admitted, degradation)
        return admitted, actions


@dataclass(frozen=True)
class CostModel:
    """Simulated service time charged per unit of work (seconds).

    Under the virtual clock the engine's real compute takes zero
    simulated time, so queueing dynamics (admission, batching, latency
    percentiles) would degenerate without a cost model.  These charges
    stand in for the real per-item work and make the whole simulation
    deterministic: identical seeds produce identical queue depths,
    rejections and percentiles on any machine.
    """

    event_s: float = 0.0005
    query_batch_s: float = 0.002  # fixed overhead per dispatched batch
    query_s: float = 0.004  # marginal cost per query in a batch

    def __post_init__(self):
        if min(self.event_s, self.query_batch_s, self.query_s) < 0:
            raise ValueError("costs must be non-negative")

    def batch_cost(self, n_queries: int) -> float:
        return self.query_batch_s + self.query_s * n_queries


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the async serving facade."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    # None disables simulated service time: processing consumes no
    # virtual time and latency reflects pure queueing/batching waits.
    cost: CostModel | None = field(default_factory=CostModel)


class RecommendationService:
    """Asyncio facade: submit_event / route_question / health / metrics.

    One event worker drains the gate's event queue through the
    StreamGuard and the refit grid; one micro-batcher coalesces
    queries into fused rank+route batches.  Both mutate the single
    :class:`ServingCore` from the same event loop, so the engine needs
    no locking and the whole service is deterministic under the
    virtual clock.
    """

    def __init__(
        self,
        core: ServingCore,
        config: ServiceConfig | None = None,
    ):
        self.core = core
        self.config = config or ServiceConfig()
        self.gate = IngestGate(self.config.admission)
        self.report = OnlineReport()
        self.degradation = DegradationReport()
        self.report.degradation = self.degradation
        self._res = core.resilience_config or ResilienceConfig()
        # Service-local registry: latency histograms of this service
        # instance, independent of the process-wide stage timers.
        self.perf = perf.PerfRegistry()
        cost = self.config.cost
        self._batcher = MicroBatcher(
            self.config.batch,
            self._handle_query_batch,
            queue=self.gate.queries,
            cost=cost.batch_cost if cost is not None else None,
        )
        self._tasks: list[asyncio.Task] = []
        self.n_responses = 0

    # -- lifecycle -----------------------------------------------------------

    def warm(self, dataset: ForumDataset) -> None:
        """Synchronously replay history events to fit the first model.

        Equivalent to submitting every thread of ``dataset`` as an
        event before any traffic arrives — the same guarded path, just
        without queueing.
        """
        for thread in dataset:
            self.core.process_event(
                thread, self.report, self.degradation, self._res
            )

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks = [loop.create_task(self._event_worker())]
        self._tasks.append(self._batcher.start())

    async def stop(self) -> None:
        self.gate.close()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        await self._batcher.stop()
        self._tasks = []

    # -- request paths -------------------------------------------------------

    async def submit_event(self, thread: Thread) -> SubmitResult:
        """Submit one forum event (a thread) for ingestion."""
        loop = asyncio.get_running_loop()
        arrival = loop.time()
        future = loop.create_future()
        admitted = await self.gate.offer_event(((thread, arrival), future))
        if not admitted:
            result = SubmitResult(
                thread.thread_id,
                "rejected",
                degraded=True,
                detail="event queue full",
                arrival_s=arrival,
                completed_s=loop.time(),
            )
            self._finish_event(result)
            return result
        return await future

    async def route_question(self, thread: Thread) -> RouteResponse:
        """Route one question; resolves when its batch was served."""
        loop = asyncio.get_running_loop()
        arrival = loop.time()
        future = loop.create_future()
        admitted = await self.gate.offer_query(((thread, arrival), future))
        if not admitted:
            response = RouteResponse(
                thread.thread_id,
                "rejected",
                detail="query queue full",
                arrival_s=arrival,
                completed_s=loop.time(),
            )
            self.n_responses += 1
            return response
        return await future

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        """Liveness/readiness summary, cheap enough to poll."""
        quarantined = (
            len(self.core.guard.quarantine)
            if self.core.guard is not None
            else 0
        )
        degraded = self.core._refit_failures > 0 or quarantined > 0
        status = (
            "warming"
            if not self.core.warmed
            else ("degraded" if degraded else "ok")
        )
        return {
            "status": status,
            "warmed": self.core.warmed,
            "pending_events": self.gate.pending_events,
            "pending_queries": self.gate.pending_queries,
            "n_refits": self.report.n_refits,
            "refit_failures": self.core._refit_failures,
            "quarantined": quarantined,
            "next_refit_hours": self.core.next_refit,
        }

    def metrics(self) -> dict:
        """Operational metrics with latency percentiles."""
        out: dict = {
            "queries": {
                "admitted": self.gate.n_queries_admitted,
                "rejected": self.gate.n_queries_rejected,
                "batches": self._batcher.n_batches,
                "mean_batch_size": round(self._batcher.mean_batch_size, 3),
            },
            "events": {
                "admitted": self.gate.n_events_admitted,
                "rejected": self.gate.n_events_rejected,
            },
            "engine": {
                "n_questions_seen": self.report.n_questions_seen,
                "n_routed": self.report.n_routed,
                "n_refits": self.report.n_refits,
                "refit_epoch": self.core.refit_epoch,
            },
            "degradation": self.degradation.summary(),
            "cache": self.core._cache.stats(),
        }
        registry = perf.get_registry()
        sharded = self.core._sharded
        if sharded is not None:
            scatter: dict = {}
            for shard in range(sharded.n_shards):
                hist = registry.histogram(f"sharding.scatter.shard{shard}")
                if hist.count:
                    scatter[f"shard{shard}"] = {
                        "count": hist.count,
                        "p50_ms": round(hist.percentile(50) * 1e3, 4),
                        "p99_ms": round(hist.percentile(99) * 1e3, 4),
                        "mean_ms": round(hist.mean * 1e3, 4),
                    }
            out["sharding"] = {
                "n_shards": sharded.n_shards,
                "mode": sharded.mode,
                "transport": sharded.transport,
                "epoch": sharded.epoch,
                "scatters": registry.counter("serving.shard_scatters"),
                "shm_bytes_published": sharded.shm_bytes,
                "shm": registry.counters_with_prefix("shm."),
                "scatter_latency": scatter,
            }
        for key, name in (
            ("query_latency", "serving.query_latency"),
            ("event_latency", "serving.event_latency"),
            ("batch_wait", "serving.batch_wait"),
        ):
            hist = self.perf.histogram(name)
            out[key] = {
                "count": hist.count,
                "p50_ms": round(hist.percentile(50) * 1e3, 4),
                "p95_ms": round(hist.percentile(95) * 1e3, 4),
                "p99_ms": round(hist.percentile(99) * 1e3, 4),
                "mean_ms": round(hist.mean * 1e3, 4),
            } if hist.count else {"count": 0}
        return out

    # -- workers -------------------------------------------------------------

    def _classify(self, admitted, actions: tuple[str, ...]) -> tuple[str, bool]:
        if admitted is not None:
            if actions:
                return "repaired", True
            return "admitted", False
        for action in actions:
            if action.startswith("quarantined"):
                return "quarantined", True
        return "dropped", True

    async def _event_worker(self) -> None:
        cost = self.config.cost
        loop = asyncio.get_running_loop()
        while True:
            (thread, arrival), future = await self.gate.events.get()
            if cost is not None and cost.event_s > 0:
                await asyncio.sleep(cost.event_s)
            admitted, actions = self.core.process_event(
                thread, self.report, self.degradation, self._res
            )
            status, degraded = self._classify(admitted, actions)
            result = SubmitResult(
                thread.thread_id,
                status,
                degraded=degraded,
                actions=actions,
                detail="; ".join(actions),
                arrival_s=arrival,
                completed_s=loop.time(),
            )
            self._finish_event(result)
            if not future.done():
                future.set_result(result)

    def _finish_event(self, result: SubmitResult) -> None:
        self.n_responses += 1
        if math.isfinite(result.latency_s):
            self.perf.record_latency("serving.event_latency", result.latency_s)

    def _handle_query_batch(self, payloads: list) -> list[RouteResponse]:
        """Sync batch handler run by the micro-batcher."""
        loop = asyncio.get_running_loop()
        dispatched = loop.time()
        for _, arrival in payloads:
            # Queue + coalescing time before the engine saw the query.
            self.perf.record_latency(
                "serving.batch_wait", dispatched - arrival
            )
        threads = [thread for thread, _ in payloads]
        responses = self.core.process_query_batch(
            threads, self.report, self.degradation, self._res
        )
        completed = loop.time()
        for (_, arrival), response in zip(payloads, responses):
            response.arrival_s = arrival
            response.completed_s = completed
            self.perf.record_latency(
                "serving.query_latency", completed - arrival
            )
            self.n_responses += 1
        return responses
