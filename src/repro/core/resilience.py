"""Fault injection and graceful degradation for the online serving loop.

The deployment story of the paper assumes a clean, chronologically
ordered event stream.  Production traffic is not like that: events
arrive late, duplicated, truncated, or with missing fields, and a refit
can die halfway through.  This module makes that messiness first-class:

* :class:`FaultPlan` / :class:`FaultInjector` — a deterministic, seeded
  perturbation of a :class:`~repro.forum.dataset.ForumDataset` thread
  stream.  Every fault drawn is recorded as a :class:`FaultRecord`, so
  tests can reconcile what went in against what the consumers did.
* :class:`StreamGuard` — the per-event ingestion gate of the online
  loop: unparseable events are quarantined (bounded queue), repairable
  ones are repaired in place (late arrivals clamped onto the stream
  clock, non-finite fields dropped or coerced, duplicates deduplicated),
  and every action lands in a :class:`DegradationReport`.
* :class:`ResilienceConfig` — knobs for the guard plus the bounded
  retry-with-backoff / snapshot-fallback policy the online loop wraps
  around ``_refit``.

Determinism contract: with a fixed ``FaultPlan(seed=s)`` the perturbed
stream, every guard decision and therefore the whole faulted replay are
bit-reproducible; a zero-rate plan returns the input threads untouched
(the same objects, in the same order).

Fault taxonomy (see ``docs/architecture.md`` for the degradation
semantics of each class):

==================  ==================================================
kind                injected defect
==================  ==================================================
``out_of_order``    the event is delayed by 1..``max_delay_slots``
                    stream positions, so its question timestamp
                    regresses behind the stream clock
``duplicate``       the whole thread is re-emitted a few slots later
                    (duplicate thread and post ids)
``missing_field``   one field is blanked: question timestamp -> NaN
                    (unparseable), answer timestamp -> NaN, answer
                    votes -> NaN, or question body -> ""
``clock_skew``      all answer timestamps of the thread shift earlier
                    by ~``clock_skew_hours``, pushing some before the
                    question itself
``truncated``      	the tail of the thread's answer list is lost
==================  ==================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Post, Thread

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
    "ResilienceConfig",
    "DegradationRecord",
    "DegradationReport",
    "StreamGuard",
    "NonFiniteFeatureError",
]

FAULT_KINDS = (
    "out_of_order",
    "duplicate",
    "missing_field",
    "clock_skew",
    "truncated",
)


class NonFiniteFeatureError(ValueError):
    """A feature matrix contains NaN/inf values; training must not proceed.

    Raised by :meth:`~repro.core.pipeline.ForumPredictor.fit_models`
    before any model sees the matrix, so a poisoned refit fails loudly
    at the start instead of silently corrupting predictions.  The
    resilient online loop catches it and falls back to the last good
    snapshot.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults to inject at which rates.

    All rates are independent per-thread Bernoulli probabilities in
    ``[0, 1]``; a thread can draw several faults at once.  A plan with
    every rate zero (:attr:`is_zero`) is the identity — the injector
    then emits the input stream untouched without consuming randomness.
    """

    seed: int = 0
    out_of_order_rate: float = 0.0
    duplicate_rate: float = 0.0
    missing_field_rate: float = 0.0
    clock_skew_rate: float = 0.0
    truncate_rate: float = 0.0
    clock_skew_hours: float = 6.0
    max_delay_slots: int = 3

    def __post_init__(self):
        for name in (
            "out_of_order_rate",
            "duplicate_rate",
            "missing_field_rate",
            "clock_skew_rate",
            "truncate_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.clock_skew_hours <= 0:
            raise ValueError("clock_skew_hours must be positive")
        if self.max_delay_slots < 1:
            raise ValueError("max_delay_slots must be >= 1")

    @property
    def is_zero(self) -> bool:
        """True when no fault class has a positive rate."""
        return (
            self.out_of_order_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.missing_field_rate == 0.0
            and self.clock_skew_rate == 0.0
            and self.truncate_rate == 0.0
        )


@dataclass(frozen=True)
class FaultRecord:
    """One fault the injector actually applied."""

    kind: str
    thread_id: int
    detail: str


class FaultInjector:
    """Applies a :class:`FaultPlan` to a dataset's thread stream.

    Draw order is fixed per thread (truncate, clock skew, missing
    field, duplicate, out-of-order) with one draw per configured fault
    class, so a given ``(plan, dataset)`` pair always produces the same
    stream and the same :attr:`records`.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.records: list[FaultRecord] = []

    def injected_counts(self) -> dict[str, int]:
        """Number of faults applied, keyed by fault kind."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def perturb(self, dataset: ForumDataset) -> list[Thread]:
        """Faulted copy of the dataset's chronological thread stream.

        Returns a new list; input threads are never mutated (faulted
        threads are rebuilt via ``dataclasses.replace``).  With a
        zero-rate plan the result is ``list(dataset)`` — the identical
        objects in the identical order.
        """
        self.records = []
        if self.plan.is_zero:
            return list(dataset)
        plan = self.plan
        rng = np.random.default_rng(plan.seed)
        # Each event gets an emission slot; faults can push it later.
        scheduled: list[tuple[int, int, Thread]] = []
        seq = 0
        for i, thread in enumerate(dataset):
            t = thread
            if plan.truncate_rate and t.answers:
                if rng.random() < plan.truncate_rate:
                    keep = int(rng.integers(0, len(t.answers)))
                    self._record(
                        "truncated",
                        t.thread_id,
                        f"lost {len(t.answers) - keep} of {len(t.answers)} answers",
                    )
                    t = Thread(question=t.question, answers=list(t.answers[:keep]))
            if plan.clock_skew_rate and t.answers:
                if rng.random() < plan.clock_skew_rate:
                    skew = plan.clock_skew_hours * (0.5 + rng.random())
                    self._record(
                        "clock_skew", t.thread_id, f"answers shifted -{skew:.3f}h"
                    )
                    t = Thread(
                        question=t.question,
                        answers=[
                            replace(a, timestamp=max(0.0, a.timestamp - skew))
                            for a in t.answers
                        ],
                    )
            if plan.missing_field_rate and rng.random() < plan.missing_field_rate:
                t = self._blank_field(t, rng)
            delay = 0
            emit_duplicate = (
                plan.duplicate_rate and rng.random() < plan.duplicate_rate
            )
            if plan.out_of_order_rate and rng.random() < plan.out_of_order_rate:
                delay = 1 + int(rng.integers(plan.max_delay_slots))
                self._record(
                    "out_of_order", t.thread_id, f"delayed {delay} slots"
                )
            scheduled.append((i + delay, seq, t))
            seq += 1
            if emit_duplicate:
                dup_delay = 1 + int(rng.integers(plan.max_delay_slots))
                self._record(
                    "duplicate", t.thread_id, f"re-emitted {dup_delay} slots later"
                )
                scheduled.append((i + dup_delay, seq, t))
                seq += 1
        scheduled.sort(key=lambda item: (item[0], item[1]))
        perf.incr("resilience.faults_injected", len(self.records))
        return [t for _, _, t in scheduled]

    def _record(self, kind: str, thread_id: int, detail: str) -> None:
        self.records.append(FaultRecord(kind, thread_id, detail))

    def _blank_field(self, t: Thread, rng: np.random.Generator) -> Thread:
        variant = int(rng.integers(4))
        if variant in (1, 2) and not t.answers:
            variant = 3
        if variant == 0:
            self._record("missing_field", t.thread_id, "question timestamp -> NaN")
            return Thread(
                question=replace(t.question, timestamp=float("nan")),
                answers=list(t.answers),
            )
        if variant == 1:
            idx = int(rng.integers(len(t.answers)))
            victim = t.answers[idx]
            self._record(
                "missing_field",
                t.thread_id,
                f"answer {victim.post_id} timestamp -> NaN",
            )
            answers = list(t.answers)
            answers[idx] = replace(victim, timestamp=float("nan"))
            return Thread(question=t.question, answers=answers)
        if variant == 2:
            idx = int(rng.integers(len(t.answers)))
            victim = t.answers[idx]
            self._record(
                "missing_field",
                t.thread_id,
                f"answer {victim.post_id} votes -> NaN",
            )
            answers = list(t.answers)
            answers[idx] = replace(victim, votes=float("nan"))
            return Thread(question=t.question, answers=answers)
        self._record("missing_field", t.thread_id, "question body -> empty")
        return Thread(
            question=replace(t.question, body=""), answers=list(t.answers)
        )


@dataclass(frozen=True)
class ResilienceConfig:
    """Degradation policy of the online loop's ingestion and refit path.

    ``quarantine_limit`` bounds how many unparseable events the guard
    retains for inspection (beyond it they are counted but not kept).
    ``max_refit_retries`` bounds the in-step retries around a raising
    refit before the loop falls back to the last good snapshot; after a
    fallback, refit attempts are skipped for ``backoff_base ** (n-1)``
    grid intervals (capped at ``max_backoff_intervals``) where ``n``
    counts consecutive failed refit steps — the replay-time analogue of
    retry-with-backoff.
    """

    quarantine_limit: int = 64
    max_refit_retries: int = 2
    backoff_base: int = 2
    max_backoff_intervals: int = 8

    def __post_init__(self):
        if self.quarantine_limit < 1:
            raise ValueError("quarantine_limit must be >= 1")
        if self.max_refit_retries < 0:
            raise ValueError("max_refit_retries must be >= 0")
        if self.backoff_base < 1:
            raise ValueError("backoff_base must be >= 1")
        if self.max_backoff_intervals < 1:
            raise ValueError("max_backoff_intervals must be >= 1")


@dataclass(frozen=True)
class DegradationRecord:
    """One degradation decision: what happened to which event.

    ``action`` is ``"<category>:<rule>"`` where the category is one of
    ``quarantined``, ``dropped``, ``repaired``, ``tolerated``,
    ``masked`` or ``refit``.  ``seq`` is the event's position in the
    (possibly faulted) stream; refit-level records use ``seq == -1``.
    """

    seq: int
    thread_id: int
    action: str
    detail: str = ""


@dataclass
class DegradationReport:
    """Everything the resilient loop dropped, repaired or retried.

    Comparable by value: two replays of the same faulted stream must
    produce equal reports, which the differential tests assert.
    """

    records: list[DegradationRecord] = field(default_factory=list)

    def add(self, seq: int, thread_id: int, action: str, detail: str = "") -> None:
        self.records.append(DegradationRecord(seq, thread_id, action, detail))
        perf.incr("resilience." + action.replace(":", "."))

    def count(self, prefix: str) -> int:
        """Records whose action starts with ``prefix`` (e.g. ``"repaired"``)."""
        return sum(1 for r in self.records if r.action.startswith(prefix))

    def summary(self) -> dict[str, int]:
        """Record counts keyed by full action string."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.action] = counts.get(record.action, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.records


class StreamGuard:
    """Per-event validate/repair/quarantine gate for thread streams.

    Maintains the invariants downstream consumers rely on: admitted
    question timestamps never decrease (late arrivals are clamped onto
    the stream clock, preserving response times), thread and post ids
    are unique, timestamps and votes are finite, and answers never
    predate their question.  Unrepairable events (a question that
    cannot be placed on the clock) are quarantined.

    Events that need no repair pass through as the same object, so a
    clean stream is admitted bit-identically at negligible cost.
    """

    def __init__(
        self,
        config: ResilienceConfig | None = None,
        report: DegradationReport | None = None,
    ):
        self.config = config or ResilienceConfig()
        self.report = report if report is not None else DegradationReport()
        self.quarantine: list[Thread] = []
        self.n_admitted = 0
        self._seen_threads: set[int] = set()
        self._seen_posts: set[int] = set()
        self._last_created = float("-inf")
        self._seq = -1

    @property
    def last_created(self) -> float:
        """Stream clock: question timestamp of the last admitted event."""
        return self._last_created

    def admit(self, thread: Thread) -> Thread | None:
        """Admit, repair or reject one event; None means not admitted.

        Every decision is appended to :attr:`report`; the returned
        thread (when not None) satisfies all stream invariants and is
        safe to append to a :class:`~repro.core.state.ForumState`.
        """
        self._seq += 1
        seq = self._seq
        question = thread.question
        if not math.isfinite(question.timestamp):
            self._quarantine(
                seq,
                thread,
                "quarantined:nonfinite_question_time",
                f"question {question.post_id} timestamp is not finite",
            )
            return None
        if thread.thread_id in self._seen_threads:
            self.report.add(
                seq,
                thread.thread_id,
                "dropped:duplicate_thread",
                f"thread {thread.thread_id} already admitted",
            )
            return None
        if question.post_id in self._seen_posts:
            self.report.add(
                seq,
                thread.thread_id,
                "dropped:duplicate_question_post",
                f"question post {question.post_id} already admitted",
            )
            return None
        shift = 0.0
        if question.timestamp < self._last_created:
            shift = self._last_created - question.timestamp
            self.report.add(
                seq,
                thread.thread_id,
                "repaired:late_arrival_clamped",
                f"arrived {shift:.3f}h behind the stream clock",
            )
        if not question.body.strip():
            self.report.add(
                seq,
                thread.thread_id,
                "tolerated:empty_body",
                f"question {question.post_id} has no body text",
            )
        changed = shift != 0.0
        if not math.isfinite(float(question.votes)):
            self.report.add(
                seq,
                thread.thread_id,
                "repaired:votes_coerced",
                f"question {question.post_id} votes -> 0",
            )
            question = replace(question, votes=0)
            changed = True
        kept: list[Post] = []
        local_posts = {question.post_id}
        for answer in thread.answers:
            if answer.post_id in self._seen_posts or answer.post_id in local_posts:
                self.report.add(
                    seq,
                    thread.thread_id,
                    "repaired:duplicate_post_dropped",
                    f"answer post {answer.post_id} already admitted",
                )
                changed = True
                continue
            if not math.isfinite(answer.timestamp):
                self.report.add(
                    seq,
                    thread.thread_id,
                    "repaired:answer_nonfinite_time_dropped",
                    f"answer {answer.post_id} timestamp is not finite",
                )
                changed = True
                continue
            if answer.timestamp < question.timestamp:
                self.report.add(
                    seq,
                    thread.thread_id,
                    "repaired:early_answer_dropped",
                    f"answer {answer.post_id} predates its question",
                )
                changed = True
                continue
            if answer.author == question.author:
                self.report.add(
                    seq,
                    thread.thread_id,
                    "repaired:self_answer_dropped",
                    f"user {answer.author} answered their own question",
                )
                changed = True
                continue
            fixed = answer
            if not math.isfinite(float(answer.votes)):
                self.report.add(
                    seq,
                    thread.thread_id,
                    "repaired:votes_coerced",
                    f"answer {answer.post_id} votes -> 0",
                )
                fixed = replace(fixed, votes=0)
                changed = True
            if shift:
                fixed = replace(fixed, timestamp=fixed.timestamp + shift)
            local_posts.add(answer.post_id)
            kept.append(fixed)
        if changed:
            admitted = Thread(
                question=(
                    replace(question, timestamp=question.timestamp + shift)
                    if shift
                    else question
                ),
                answers=kept,
            )
        else:
            admitted = thread
        self._seen_threads.add(thread.thread_id)
        self._seen_posts.update(local_posts)
        self._last_created = admitted.created_at
        self.n_admitted += 1
        perf.incr("resilience.events_admitted")
        return admitted

    def _quarantine(
        self, seq: int, thread: Thread, action: str, detail: str
    ) -> None:
        if len(self.quarantine) < self.config.quarantine_limit:
            self.quarantine.append(thread)
        else:
            detail += " (quarantine full, event not retained)"
        self.report.add(seq, thread.thread_id, action, detail)
