"""Dtype policy for the columnar hot path.

The columnar event store (:mod:`repro.core.columnar`) pins entity ids
to ``int32`` and bounded per-event values (votes, word/code lengths) to
``float32``:

* **ids** — user, thread and question ids are external identifiers; the
  store guarantees nothing about them beyond fitting in a signed 32-bit
  integer, so every ingest path funnels through :func:`ensure_ids`,
  which raises :class:`IdOverflowError` instead of silently wrapping.
* **float32 values** — vote counts and token lengths are small integers
  (|v| well under 2**24), so storing them as ``float32`` is *exact*:
  the value round-trips bit-identically through the ``float64``
  arithmetic the feature engine runs in.  Quantities that are genuinely
  real-valued and precision-sensitive (timestamps, response times,
  model-facing topic mixtures) stay ``float64``.

Keeping the policy in one module lets the state engine, the retrieval
indices and the streaming generator agree on widths without importing
each other.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ID_DTYPE",
    "ID_MAX",
    "VALUE_DTYPE",
    "TIME_DTYPE",
    "IdOverflowError",
    "ensure_ids",
    "check_id",
]

ID_DTYPE = np.int32
ID_MAX = np.iinfo(ID_DTYPE).max
VALUE_DTYPE = np.float32
TIME_DTYPE = np.float64


class IdOverflowError(OverflowError):
    """An id does not fit the columnar store's ``int32`` id columns."""


def ensure_ids(values, what: str = "id") -> np.ndarray:
    """``values`` as an ``int32`` array, or :class:`IdOverflowError`.

    Accepts any integer array-like.  The check happens on the original
    width, so values that would wrap (negative ids included) are caught
    rather than aliased onto a valid id.
    """
    arr = np.asarray(values)
    if arr.dtype == ID_DTYPE:
        if arr.size and int(arr.min()) < 0:
            raise IdOverflowError(
                f"negative {what} {int(arr.min())} is not a valid id"
            )
        return arr
    wide = arr.astype(np.int64, copy=False)
    if wide.size:
        lo, hi = int(wide.min()), int(wide.max())
        if lo < 0 or hi > ID_MAX:
            bad = lo if lo < 0 else hi
            raise IdOverflowError(
                f"{what} {bad} outside the int32 id range [0, {ID_MAX}]"
            )
    return wide.astype(ID_DTYPE)


def check_id(value: int, what: str = "id") -> int:
    """A single id validated against the ``int32`` range."""
    value = int(value)
    if value < 0 or value > ID_MAX:
        raise IdOverflowError(
            f"{what} {value} outside the int32 id range [0, {ID_MAX}]"
        )
    return value
