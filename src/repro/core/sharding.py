"""Shared-nothing sharded feature extraction and question routing.

Scales the Sec.-IV/V hot path (featurize candidates -> predict ->
exact LP) across worker processes without changing a single output bit:

* **Partitioning** — users are assigned to shards by ``user % n_shards``
  (:class:`ShardPlan`).  Each shard holds only its users' heavy state: a
  row-slice of the frozen batch tables and histories
  (:func:`slice_frozen`), which are *exact row copies* of the
  single-process tables because the canonical table layout is already
  sorted by user id.  Small global tables (question info, graphs,
  centralities, discussed aggregates) are broadcast read-only.
* **Per-shard work** — each worker featurizes its candidate slice with
  the ordinary :class:`~repro.core.features.FeatureExtractor` (batch
  engine, columnar tables) and, under a two-stage config, generates its
  local candidate top-k lists.
* **Deterministic merge** — the parent concatenates the per-shard
  feature blocks, restores canonical ascending-user order, runs the
  model heads *once* on the merged matrix, and feeds the eligible set
  to the shared LP tail
  (:func:`~repro.core.routing.finish_recommendation`).  Because the
  merged matrix is byte-identical to the dense matrix over sorted
  candidates, routing results are bit-identical to a single-process
  dense run at any shard count — including every model-forward bit,
  which would not be guaranteed if each shard ran its own forward pass
  on differently-shaped row blocks.

Candidate generation merges the same way: shard-local top-k lists are
re-ranked under the exact global sort key (topic affinity:
``(-score, id)``; activity: ``(-count, -latest, id)``), so the fused
pool is invariant to the shard count.

Process mode runs shards on a persistent
:class:`~repro.core.parallel.ShardPool` (payload shipped once at worker
startup); inline mode runs the identical worker objects in-process,
which is what the equivalence tests pin against the dense router.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from .columnar import BatchTables
from .features import FeatureExtractor
from .parallel import ShardPool
from .pipeline import ForumPredictor
from .retrieval.config import RetrievalConfig
from .retrieval.engine import _sorted_member, reciprocal_rank_fusion
from .routing import RoutingResult, finish_recommendation
from .state import FrozenState
from .topic_context import TopicModelContext

__all__ = [
    "ShardPlan",
    "ShardPayload",
    "ShardWorker",
    "ShardedRouter",
    "slice_frozen",
    "slice_tables",
]


@dataclass(frozen=True)
class ShardPlan:
    """User -> shard assignment: ``user % n_shards``."""

    n_shards: int

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")

    def shard_of(self, users):
        return np.asarray(users) % self.n_shards

    def mask(self, users, shard: int) -> np.ndarray:
        return (np.asarray(users) % self.n_shards) == shard


def slice_tables(tbl: BatchTables, users_sel: list[int]) -> BatchTables:
    """The batch-table rows of ``users_sel`` (must be sorted ascending).

    Per-user rows and per-user history blocks are fancy-indexed copies
    of the full table, so every float a shard reads is the same object
    value the single-process engine reads; only ``seg_start`` and the
    ``row_of`` offsets are rebased onto the shard-local concatenation.
    """
    idx = np.fromiter(
        (tbl.user_index[u] for u in users_sel),
        dtype=np.int64,
        count=len(users_sel),
    )
    counts = tbl.n[idx] if idx.size else np.zeros(0, dtype=np.int64)
    u_count = idx.size
    seg_start = np.zeros(u_count, dtype=np.int64)
    if u_count > 1:
        np.cumsum(counts[:-1], out=seg_start[1:])
    if u_count:
        rows = np.concatenate(
            [
                np.arange(tbl.seg_start[i], tbl.seg_start[i] + tbl.n[i])
                for i in idx.tolist()
            ]
        )
    else:
        rows = np.empty(0, dtype=np.int64)
    delta = {
        u: int(seg_start[pos]) - int(tbl.seg_start[idx[pos]])
        for pos, u in enumerate(users_sel)
    }
    row_of = {
        key: row + delta[key[0]]
        for key, row in tbl.row_of.items()
        if key[0] in delta
    }
    return BatchTables(
        user_index={u: pos for pos, u in enumerate(users_sel)},
        n=counts,
        votes_sum=tbl.votes_sum[idx],
        median_rt=tbl.median_rt[idx],
        d_u=tbl.d_u[idx],
        topic_sum=tbl.topic_sum[idx],
        seg_start=seg_start,
        hist_topics=tbl.hist_topics[rows],
        hist_votes=tbl.hist_votes[rows],
        hist_answer_topics=tbl.hist_answer_topics[rows],
        times_sorted=tbl.times_sorted[rows],
        time_rank=tbl.time_rank[rows],
        row_of=row_of,
        dup_users={u for u in tbl.dup_users if u in delta},
    )


def slice_frozen(frozen: FrozenState, users_sel: list[int]) -> FrozenState:
    """A shard's frozen snapshot: heavy per-user state restricted to
    ``users_sel``, small global tables shared as-is."""
    return replace(
        frozen,
        histories={u: frozen.histories[u] for u in users_sel},
        batch_tables=slice_tables(frozen.batch_tables, users_sel),
    )


@dataclass
class ShardPayload:
    """Everything one shard worker needs, shipped once at startup."""

    shard: int
    n_shards: int
    frozen: FrozenState  # sliced to this shard's users
    topics: TopicModelContext  # slim: vocabulary + model, empty cache
    # Activity (recency) table restricted to this shard's users; empty
    # arrays when candidate generation is not in use.
    act_users: np.ndarray
    act_counts: np.ndarray
    act_latest: np.ndarray


class ShardWorker:
    """One shard's state: a bound extractor plus generation tables.

    Used identically inline (in-process) and as the
    :class:`~repro.core.parallel.ShardPool` factory target.
    """

    def __init__(self, payload: ShardPayload):
        self.shard = payload.shard
        self.n_shards = payload.n_shards
        extractor = FeatureExtractor.__new__(FeatureExtractor)
        extractor._bind(payload.frozen, payload.topics, ForumDataset([]))
        self.extractor = extractor
        tables = payload.frozen.batch_tables
        self._gen_users = np.fromiter(
            tables.user_index, dtype=np.int64, count=len(tables.user_index)
        )
        self._gen_d_u = tables.d_u
        self._act_users = np.asarray(payload.act_users, dtype=np.int64)
        self._act_counts = np.asarray(payload.act_counts, dtype=np.int64)
        self._act_latest = np.asarray(payload.act_latest, dtype=float)

    def score(
        self,
        threads: list[Thread],
        users_per_thread: list[np.ndarray],
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``(users, feature_rows)`` of this shard's candidate slice.

        ``users_per_thread[i]`` is thread ``i``'s full candidate pool;
        the worker featurizes the subset assigned to its shard.  Rows
        come back in ascending user order (pools are sorted), ready for
        the parent's canonical merge.
        """
        out = []
        for thread, users in zip(threads, users_per_thread):
            users = np.asarray(users, dtype=np.int64)
            mine = users[(users % self.n_shards) == self.shard]
            x = self.extractor.feature_matrix(
                [(int(u), thread) for u in mine]
            )
            out.append((mine, x))
        return out

    def generate(
        self,
        thetas: np.ndarray,
        topic_top_k: int,
        recency_top_k: int,
    ) -> dict:
        """Shard-local candidate top-k lists with their exact sort keys.

        Topic affinity scores every shard user exhaustively
        (``theta . d_u`` — per-row reductions, so a user's score does
        not depend on which shard computes it); activity ranks by
        ``(-count, -latest, id)``.  Local top-k lists are supersets of
        the shard's contribution to the global top-k, so the parent's
        key-merge reconstructs the exact global ranking.
        """
        order = np.lexsort(
            (self._act_users, -self._act_latest, -self._act_counts)
        )[:recency_top_k]
        activity = (
            self._act_users[order],
            self._act_counts[order],
            self._act_latest[order],
        )
        topic = []
        for theta in np.atleast_2d(thetas):
            scores = (self._gen_d_u * theta).sum(axis=1)
            top = np.lexsort((self._gen_users, -scores))[:topic_top_k]
            topic.append((self._gen_users[top], scores[top]))
        return {"topic": topic, "activity": activity}


def _window_activity(
    window: ForumDataset,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-user answer volume and latest answer time over the window."""
    records = window.answer_records()
    if not records:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0)
    users = np.fromiter(
        (r.user for r in records), dtype=np.int64, count=len(records)
    )
    times = np.fromiter(
        (r.timestamp for r in records), dtype=float, count=len(records)
    )
    order = np.lexsort((times, users))
    users, times = users[order], times[order]
    uniq, start, counts = np.unique(
        users, return_index=True, return_counts=True
    )
    return uniq, counts.astype(np.int64), times[start + counts - 1]


class ShardedRouter:
    """Shard-parallel drop-in for dense :class:`QuestionRouter` batches.

    Built from a fitted predictor; scoring (and, with a ``retrieval``
    config, candidate generation) fans out over shards while the model
    heads and the exact LP run once in the parent on the merged,
    canonically ordered arrays.  Output contract: bit-identical to the
    dense router called with *sorted* candidates, at any shard count.

    ``mode="process"`` runs shards on persistent worker processes
    (shared-nothing; payloads ship once); ``mode="inline"`` runs the
    same worker objects in-process — zero IPC, same bits, useful for
    tests and single-core machines.
    """

    def __init__(
        self,
        predictor: ForumPredictor,
        n_shards: int,
        *,
        epsilon: float = 0.5,
        default_capacity: float = 1.0,
        retrieval: RetrievalConfig | None = None,
        mode: str = "inline",
    ):
        if predictor.extractor is None:
            raise RuntimeError("predictor is not fitted")
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if default_capacity <= 0:
            raise ValueError("default_capacity must be positive")
        if mode not in ("inline", "process"):
            raise ValueError("mode must be 'inline' or 'process'")
        self.predictor = predictor
        self.plan = ShardPlan(n_shards)
        self.epsilon = epsilon
        self.default_capacity = default_capacity
        self.retrieval = retrieval
        self.mode = mode
        frozen = predictor.extractor.frozen
        tables = frozen.batch_tables
        table_users = np.fromiter(
            tables.user_index, dtype=np.int64, count=len(tables.user_index)
        )
        if self._two_stage():
            act_users, act_counts, act_latest = _window_activity(
                predictor.extractor.window
            )
        else:
            act_users = np.empty(0, dtype=np.int64)
            act_counts = np.empty(0, dtype=np.int64)
            act_latest = np.empty(0)
        # Users any index has evidence about; candidates outside this
        # set are kept in every pool unconditionally (same rule as
        # CandidateRetriever.pool).
        self._known = np.union1d(table_users, act_users)
        slim_topics = TopicModelContext(
            predictor.topics.vocabulary, predictor.topics.model, {}
        )
        with perf.timer("sharding.build"):
            payloads = []
            for shard in range(n_shards):
                users_sel = [
                    u for u in tables.user_index if u % n_shards == shard
                ]
                m = self.plan.mask(act_users, shard)
                payloads.append(
                    ShardPayload(
                        shard=shard,
                        n_shards=n_shards,
                        frozen=slice_frozen(frozen, users_sel),
                        topics=slim_topics,
                        act_users=act_users[m],
                        act_counts=act_counts[m],
                        act_latest=act_latest[m],
                    )
                )
            self._pool: ShardPool | None = None
            self._workers: list[ShardWorker] | None = None
            if mode == "process":
                self._pool = ShardPool(payloads, ShardWorker)
            else:
                self._workers = [ShardWorker(p) for p in payloads]
        perf.incr("sharding.routers_built")

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def _two_stage(self) -> bool:
        return self.retrieval is not None and self.retrieval.mode == "two_stage"

    def _scatter(self, method: str, *args) -> list:
        """Run ``method(*args)`` on every shard; results in shard order."""
        if self._pool is not None:
            return self._pool.call_all(
                method, [args] * self.plan.n_shards
            )
        return [getattr(w, method)(*args) for w in self._workers]

    # -- candidate generation ------------------------------------------------

    def candidate_pools(
        self, threads: list[Thread], candidates: np.ndarray
    ) -> list[np.ndarray]:
        """Fused candidate pool per thread (two-stage config required).

        Shards generate local top-k lists; the parent merges them under
        the exact global sort keys and fuses with RRF, so the pools do
        not depend on the shard count.
        """
        cfg = self.retrieval
        if cfg is None:
            raise RuntimeError("candidate generation needs a retrieval config")
        candidates = np.sort(np.asarray(candidates, dtype=np.int64))
        thetas = np.stack(
            [
                self.predictor.topics.post_topics(t.question)
                for t in threads
            ]
        )
        with perf.timer("sharding.generate"):
            shard_gen = self._scatter(
                "generate", thetas, cfg.topic_top_k, cfg.recency_top_k
            )
            act_ids = np.concatenate([g["activity"][0] for g in shard_gen])
            act_counts = np.concatenate([g["activity"][1] for g in shard_gen])
            act_latest = np.concatenate([g["activity"][2] for g in shard_gen])
            order = np.lexsort((act_ids, -act_latest, -act_counts))
            activity_ranked = act_ids[order][: cfg.recency_top_k]
            pools = []
            for i in range(len(threads)):
                t_ids = np.concatenate(
                    [g["topic"][i][0] for g in shard_gen]
                )
                t_scores = np.concatenate(
                    [g["topic"][i][1] for g in shard_gen]
                )
                order = np.lexsort((t_ids, -t_scores))
                topic_ranked = t_ids[order][: cfg.topic_top_k]
                fused = reciprocal_rank_fusion(
                    [topic_ranked, activity_ranked],
                    rrf_k=cfg.rrf_k,
                    pool_size=cfg.pool_size,
                )
                pool = np.union1d(
                    candidates[_sorted_member(candidates, fused)],
                    candidates[~_sorted_member(candidates, self._known)],
                )
                pools.append(pool)
        perf.incr("sharding.pools_generated", len(pools))
        return pools

    # -- routing -------------------------------------------------------------

    def route(
        self,
        thread: Thread,
        candidates,
        *,
        tradeoff: float = 0.1,
        recent_load: dict[int, int] | None = None,
        capacities: dict[int, float] | None = None,
    ) -> RoutingResult | None:
        return self.route_batch(
            [thread],
            candidates,
            tradeoff=tradeoff,
            recent_load=recent_load,
            capacities=capacities,
        )[0]

    def route_batch(
        self,
        threads: list[Thread],
        candidates,
        *,
        tradeoff: float = 0.1,
        recent_load: dict[int, int] | None = None,
        capacities: dict[int, float] | None = None,
    ) -> list[RoutingResult | None]:
        """Sec.-V routing for a batch of questions over shared candidates.

        ``recent_load``/``capacities`` apply to every thread in the
        batch (one load snapshot per call, matching a replay step).
        Results are in thread order; ``None`` where nobody is eligible
        or capacity is infeasible — exactly the dense router's contract.
        """
        candidates = np.sort(np.asarray(candidates, dtype=np.int64))
        if candidates.size == 0:
            return [None] * len(threads)
        if self._two_stage():
            pools = self.candidate_pools(threads, candidates)
            pool_sizes: list[int | None] = [int(p.size) for p in pools]
        else:
            pools = [candidates] * len(threads)
            pool_sizes = [None] * len(threads)
        with perf.timer("sharding.score"):
            shard_scores = self._scatter("score", threads, pools)
        results: list[RoutingResult | None] = []
        with perf.timer("sharding.merge"):
            for i, thread in enumerate(threads):
                user_parts = []
                x_parts = []
                for shard_result in shard_scores:
                    users, x = shard_result[i]
                    if users.size:
                        user_parts.append(users)
                        x_parts.append(x)
                if not user_parts:
                    results.append(None)
                    continue
                users = np.concatenate(user_parts)
                x = np.concatenate(x_parts, axis=0)
                # Canonical merge: shards partition users disjointly and
                # return them ascending, so one stable argsort restores
                # the exact dense (sorted-candidate) row order.
                order = np.argsort(users, kind="stable")
                users = users[order]
                x = x[order]
                horizons = np.full(
                    users.size,
                    float(self.predictor._horizons([thread])[0]),
                )
                answer = self.predictor.answer_model.predict_proba(x)
                votes = self.predictor.vote_model.predict(x)
                times = self.predictor.timing_model.predict(x, horizons)
                eligible = np.flatnonzero(answer >= self.epsilon)
                if eligible.size == 0:
                    results.append(None)
                    continue
                results.append(
                    finish_recommendation(
                        thread.thread_id,
                        users[eligible],
                        answer[eligible],
                        votes[eligible],
                        times[eligible],
                        tradeoff=tradeoff,
                        recent_load=recent_load,
                        capacities=capacities,
                        default_capacity=self.default_capacity,
                        pool_size=pool_sizes[i],
                    )
                )
        perf.incr("sharding.questions_routed", len(threads))
        return results

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
