"""Shared-nothing sharded feature extraction and question routing.

Scales the Sec.-IV/V hot path (featurize candidates -> predict ->
exact LP) across worker processes without changing a single output bit:

* **Partitioning** — users are assigned to shards by ``user % n_shards``
  (:class:`ShardPlan`).  Each shard holds only its users' heavy state: a
  row-slice of the frozen batch tables and histories
  (:func:`slice_frozen`), which are *exact row copies* of the
  single-process tables because the canonical table layout is already
  sorted by user id.  Small global tables (question info, graphs,
  centralities, discussed aggregates) are broadcast read-only.
* **Per-shard work** — each worker featurizes its candidate slice with
  the ordinary :class:`~repro.core.features.FeatureExtractor` (batch
  engine, columnar tables) and, under a two-stage config, generates its
  local candidate top-k lists.
* **Deterministic merge** — the parent concatenates the per-shard
  feature blocks, restores canonical ascending-user order, runs the
  model heads *once* on the merged matrix, and feeds the eligible set
  to the shared LP tail
  (:func:`~repro.core.routing.finish_recommendation`).  Because the
  merged matrix is byte-identical to the dense matrix over sorted
  candidates, routing results are bit-identical to a single-process
  dense run at any shard count — including every model-forward bit,
  which would not be guaranteed if each shard ran its own forward pass
  on differently-shaped row blocks.

Candidate generation merges the same way: shard-local top-k lists are
re-ranked under the exact global sort key (topic affinity:
``(-score, id)``; activity: ``(-count, -latest, id)``), so the fused
pool is invariant to the shard count.

Process mode runs shards on a persistent
:class:`~repro.core.parallel.ShardPool`; by default shard state travels
over **named shared memory** rather than the pool pipe — each refit
epoch is published once into ``/dev/shm`` blocks the workers map
zero-copy (manifests of a few hundred bytes are all that pickles), and
:meth:`ShardedRouter.rebind` swaps worker views atomically behind an
epoch-tagged handshake.  Inline mode runs the identical worker objects
in-process, which is what the equivalence tests pin against the dense
router.
"""

from __future__ import annotations

import atexit
import gc
import pickle
import time
from dataclasses import dataclass, replace

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from .columnar import BatchTables, UserHistory
from .dtypes import ID_DTYPE
from .features import FeatureExtractor
from .parallel import ShardPool
from .pipeline import ForumPredictor
from .retrieval.config import RetrievalConfig
from .retrieval.engine import _sorted_member, reciprocal_rank_fusion
from .routing import RoutingResult, finish_recommendation
from .shm import ShmManifest
from .shm import attach as shm_attach
from .shm import publish as shm_publish
from .shm import unlink as shm_unlink
from .state import ColumnQuestionInfo, FrozenState
from .topic_context import TopicModelContext

__all__ = [
    "ShardPlan",
    "ShardPayload",
    "ShmShardPayload",
    "ShardWorker",
    "ShardedRouter",
    "slice_frozen",
    "slice_tables",
    "build_worker_from_shm",
]


@dataclass(frozen=True)
class ShardPlan:
    """User -> shard assignment: ``user % n_shards``."""

    n_shards: int

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")

    def shard_of(self, users):
        return np.asarray(users) % self.n_shards

    def mask(self, users, shard: int) -> np.ndarray:
        return (np.asarray(users) % self.n_shards) == shard


def slice_tables(tbl: BatchTables, users_sel: list[int]) -> BatchTables:
    """The batch-table rows of ``users_sel`` (must be sorted ascending).

    Per-user rows and per-user history blocks are fancy-indexed copies
    of the full table, so every float a shard reads is the same object
    value the single-process engine reads; only ``seg_start`` and the
    ``row_of`` offsets are rebased onto the shard-local concatenation.
    """
    idx = np.fromiter(
        (tbl.user_index[u] for u in users_sel),
        dtype=np.int64,
        count=len(users_sel),
    )
    counts = tbl.n[idx] if idx.size else np.zeros(0, dtype=np.int64)
    u_count = idx.size
    seg_start = np.zeros(u_count, dtype=np.int64)
    if u_count > 1:
        np.cumsum(counts[:-1], out=seg_start[1:])
    if u_count:
        rows = np.concatenate(
            [
                np.arange(tbl.seg_start[i], tbl.seg_start[i] + tbl.n[i])
                for i in idx.tolist()
            ]
        )
    else:
        rows = np.empty(0, dtype=np.int64)
    delta = {
        u: int(seg_start[pos]) - int(tbl.seg_start[idx[pos]])
        for pos, u in enumerate(users_sel)
    }
    row_of = {
        key: row + delta[key[0]]
        for key, row in tbl.row_of.items()
        if key[0] in delta
    }
    return BatchTables(
        user_index={u: pos for pos, u in enumerate(users_sel)},
        n=counts,
        votes_sum=tbl.votes_sum[idx],
        median_rt=tbl.median_rt[idx],
        d_u=tbl.d_u[idx],
        topic_sum=tbl.topic_sum[idx],
        seg_start=seg_start,
        hist_topics=tbl.hist_topics[rows],
        hist_votes=tbl.hist_votes[rows],
        hist_answer_topics=tbl.hist_answer_topics[rows],
        times_sorted=tbl.times_sorted[rows],
        time_rank=tbl.time_rank[rows],
        row_of=row_of,
        dup_users={u for u in tbl.dup_users if u in delta},
    )


def slice_frozen(frozen: FrozenState, users_sel: list[int]) -> FrozenState:
    """A shard's frozen snapshot: heavy per-user state restricted to
    ``users_sel``, small global tables shared as-is."""
    return replace(
        frozen,
        histories={u: frozen.histories[u] for u in users_sel},
        batch_tables=slice_tables(frozen.batch_tables, users_sel),
    )


@dataclass
class ShardPayload:
    """Everything one shard worker needs, shipped once at startup."""

    shard: int
    n_shards: int
    frozen: FrozenState  # sliced to this shard's users
    topics: TopicModelContext  # slim: vocabulary + model, empty cache
    # Activity (recency) table restricted to this shard's users; empty
    # arrays when candidate generation is not in use.
    act_users: np.ndarray
    act_counts: np.ndarray
    act_latest: np.ndarray
    # Refit-epoch the payload belongs to; workers echo it back in the
    # swap handshake so the parent knows every shard flipped.
    epoch: int = 0


@dataclass(frozen=True)
class ShmShardPayload:
    """Zero-copy shard bootstrap: block manifests instead of pickled state.

    The heavy arrays live in two named shared-memory blocks published
    once per refit epoch — one *global* block shared by every shard
    (question columns plus a pickled blob of the small global state)
    and one *per-shard* block with the shard's table rows and history
    blocks.  What ships down the worker pipe is only this payload: a
    few hundred bytes of names, dtypes and offsets.
    """

    shard: int
    n_shards: int
    epoch: int
    global_manifest: ShmManifest
    shard_manifest: ShmManifest


class ShardWorker:
    """One shard's state: a bound extractor plus generation tables.

    Used identically inline (in-process) and as the
    :class:`~repro.core.parallel.ShardPool` factory target.
    """

    def __init__(self, payload: ShardPayload):
        self.shard = payload.shard
        self.n_shards = payload.n_shards
        self.epoch = payload.epoch
        # Shared-memory handles backing this state's arrays (shm
        # transport only); must outlive every view, see release().
        self._shm_handles: list = []
        extractor = FeatureExtractor.__new__(FeatureExtractor)
        extractor._bind(payload.frozen, payload.topics, ForumDataset([]))
        self.extractor = extractor
        tables = payload.frozen.batch_tables
        self._gen_users = np.fromiter(
            tables.user_index, dtype=np.int64, count=len(tables.user_index)
        )
        self._gen_d_u = tables.d_u
        self._act_users = np.asarray(payload.act_users, dtype=np.int64)
        self._act_counts = np.asarray(payload.act_counts, dtype=np.int64)
        self._act_latest = np.asarray(payload.act_latest, dtype=float)

    def release(self) -> None:
        """Drop every array reference, then close mapped shm blocks.

        ``SharedMemory.close`` raises ``BufferError`` while numpy views
        into the buffer are alive, so the refs go first and a collect
        sweeps any cycles before the handles close.  Called by the pool
        workers on swap (old epoch) and teardown.
        """
        self.extractor = None
        self._gen_users = None
        self._gen_d_u = None
        self._act_users = None
        self._act_counts = None
        self._act_latest = None
        handles, self._shm_handles = self._shm_handles, []
        if handles:
            gc.collect()
        for handle in handles:
            try:
                handle.close()
            except BufferError:  # stray view; mapping dies with the process
                pass

    def score(
        self,
        threads: list[Thread],
        users_per_thread: list[np.ndarray],
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``(users, feature_rows)`` of this shard's candidate slice.

        ``users_per_thread[i]`` is thread ``i``'s full candidate pool;
        the worker featurizes the subset assigned to its shard.  Rows
        come back in ascending user order (pools are sorted), ready for
        the parent's canonical merge.
        """
        out = []
        for thread, users in zip(threads, users_per_thread):
            users = np.asarray(users, dtype=np.int64)
            mine = users[(users % self.n_shards) == self.shard]
            x = self.extractor.feature_matrix(
                [(int(u), thread) for u in mine]
            )
            out.append((mine, x))
        return out

    def generate(
        self,
        thetas: np.ndarray,
        topic_top_k: int,
        recency_top_k: int,
    ) -> dict:
        """Shard-local candidate top-k lists with their exact sort keys.

        Topic affinity scores every shard user exhaustively
        (``theta . d_u`` — per-row reductions, so a user's score does
        not depend on which shard computes it); activity ranks by
        ``(-count, -latest, id)``.  Local top-k lists are supersets of
        the shard's contribution to the global top-k, so the parent's
        key-merge reconstructs the exact global ranking.
        """
        order = np.lexsort(
            (self._act_users, -self._act_latest, -self._act_counts)
        )[:recency_top_k]
        activity = (
            self._act_users[order],
            self._act_counts[order],
            self._act_latest[order],
        )
        topic = []
        for theta in np.atleast_2d(thetas):
            scores = (self._gen_d_u * theta).sum(axis=1)
            top = np.lexsort((self._gen_users, -scores))[:topic_top_k]
            topic.append((self._gen_users[top], scores[top]))
        return {"topic": topic, "activity": activity}


def _window_activity(
    window: ForumDataset,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-user answer volume and latest answer time over the window."""
    records = window.answer_records()
    if not records:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0)
    users = np.fromiter(
        (r.user for r in records), dtype=np.int64, count=len(records)
    )
    times = np.fromiter(
        (r.timestamp for r in records), dtype=float, count=len(records)
    )
    order = np.lexsort((times, users))
    users, times = users[order], times[order]
    uniq, start, counts = np.unique(
        users, return_index=True, return_counts=True
    )
    return uniq, counts.astype(np.int64), times[start + counts - 1]


# -- shared-memory transport -------------------------------------------------
#
# The pickle transport ships each shard a sliced FrozenState (dicts of
# UserHistory objects, row_of dict, per-question dataclasses) through
# the process-pool pipe on every (re)build.  The shm transport instead
# publishes the flat arrays once per refit epoch and lets each worker
# *reconstruct* the derived dict structures locally from the mapped
# views.  Every reconstruction below is value-exact: the worker reads
# the same float bits the parent's tables hold.


def _sliced_shard_arrays(
    tbl: BatchTables, histories, users_sel: list[int]
) -> dict[str, np.ndarray]:
    """One shard's flat table arrays, ready for shm publication.

    Unlike :func:`slice_tables` this skips the ``row_of``/``delta``
    dict work entirely — workers rebuild ``row_of`` and ``dup_users``
    from ``hist_tids`` (the per-user answered-thread ids in arrival
    order), and the leave-one-out ``response_times`` come back exactly
    via ``times_sorted[seg_start + time_rank]``, so no arrival-order
    response-time array ships at all.
    """
    idx = np.fromiter(
        (tbl.user_index[u] for u in users_sel),
        dtype=np.int64,
        count=len(users_sel),
    )
    counts = tbl.n[idx] if idx.size else np.zeros(0, dtype=np.int64)
    seg_start = np.zeros(idx.size, dtype=np.int64)
    if idx.size > 1:
        np.cumsum(counts[:-1], out=seg_start[1:])
    if idx.size:
        rows = np.concatenate(
            [
                np.arange(tbl.seg_start[i], tbl.seg_start[i] + tbl.n[i])
                for i in idx.tolist()
            ]
        )
        hist_tids = np.concatenate(
            [np.asarray(histories[u].answered_thread_ids) for u in users_sel]
        )
    else:
        rows = np.empty(0, dtype=np.int64)
        hist_tids = np.empty(0, dtype=ID_DTYPE)
    return {
        "users": np.asarray(users_sel, dtype=np.int64),
        "n": counts,
        "votes_sum": tbl.votes_sum[idx],
        "median_rt": tbl.median_rt[idx],
        "d_u": tbl.d_u[idx],
        "topic_sum": tbl.topic_sum[idx],
        "seg_start": seg_start,
        "hist_topics": tbl.hist_topics[rows],
        "hist_votes": tbl.hist_votes[rows],
        "hist_answer_topics": tbl.hist_answer_topics[rows],
        "times_sorted": tbl.times_sorted[rows],
        "time_rank": tbl.time_rank[rows],
        "hist_tids": hist_tids,
    }


def _question_columns(frozen: FrozenState):
    """``(tids, votes, word_length, code_length, topics)`` columns of
    the frozen question info, whatever container it lives in."""
    qi = frozen.question_info
    if isinstance(qi, ColumnQuestionInfo):
        return qi.tids, qi.votes, qi.word_length, qi.code_length, qi.topics
    tids = np.fromiter(qi, dtype=np.int64, count=len(qi))
    infos = [qi[int(t)] for t in tids.tolist()]
    if infos:
        topics = np.stack([info.topics for info in infos])
    else:
        d_u = frozen.batch_tables.d_u
        k = d_u.shape[1] if getattr(d_u, "ndim", 0) == 2 else 0
        topics = np.zeros((0, k))
    return (
        tids,
        np.array([info.votes for info in infos]),
        np.array([info.word_length for info in infos]),
        np.array([info.code_length for info in infos]),
        topics,
    )


class _ShardHistories:
    """Lazy ``user -> UserHistory`` over a shard's mapped table arrays.

    Only the extractor's slow path (users in ``dup_users``) reads
    histories, so building one dict of array objects per user up front
    would be wasted work on the hot path; slices are materialized on
    lookup instead.  Values are exact: the table blocks were copied
    row-for-row from the arrays the object histories fed.
    """

    def __init__(
        self, tables: BatchTables, hist_tids: np.ndarray, rt_flat: np.ndarray
    ):
        self._tables = tables
        self._hist_tids = hist_tids
        self._rt_flat = rt_flat

    def get(self, user: int, default=None):
        i = self._tables.user_index.get(user)
        if i is None:
            return default
        t = self._tables
        lo = int(t.seg_start[i])
        hi = lo + int(t.n[i])
        return UserHistory(
            answered_thread_ids=self._hist_tids[lo:hi],
            answered_question_topics=t.hist_topics[lo:hi],
            answer_votes=t.hist_votes[lo:hi],
            response_times=self._rt_flat[lo:hi],
            answer_topic_vectors=t.hist_answer_topics[lo:hi],
        )

    def __getitem__(self, user: int) -> UserHistory:
        history = self.get(user)
        if history is None:
            raise KeyError(user)
        return history

    def __contains__(self, user: int) -> bool:
        return user in self._tables.user_index

    def __iter__(self):
        return iter(self._tables.user_index)

    def __len__(self) -> int:
        return len(self._tables.user_index)


def _tables_from_views(views: dict[str, np.ndarray]) -> BatchTables:
    """Rebuild a shard's :class:`BatchTables` over mapped shm views.

    ``row_of`` maps each (user, answered thread) pair to its
    concatenated row — positions in the zipped enumeration are exactly
    the global row ids because blocks are laid out per user in order.
    Users who answered some thread twice get their later row in the
    dict, but the batch engine consults ``dup_users`` first, so those
    entries are never read — matching the canonical tables, which omit
    them.  ``dup_users`` itself falls out of a per-block sort: any
    adjacent equal (block, tid) pair marks a duplicate.
    """
    users = views["users"]
    n = np.asarray(views["n"])
    seg_start = np.asarray(views["seg_start"])
    hist_tids = views["hist_tids"]
    total = int(n.sum())
    u_rep = np.repeat(users, n)
    row_of = dict(
        zip(zip(u_rep.tolist(), hist_tids.tolist()), range(total))
    )
    block = np.repeat(np.arange(users.size), n)
    order = np.lexsort((hist_tids, block))
    b_sorted = block[order]
    t_sorted = hist_tids[order]
    dup_mask = (b_sorted[1:] == b_sorted[:-1]) & (
        t_sorted[1:] == t_sorted[:-1]
    )
    dup_users = {
        int(users[b]) for b in np.unique(b_sorted[1:][dup_mask]).tolist()
    }
    return BatchTables(
        user_index={int(u): i for i, u in enumerate(users.tolist())},
        n=n,
        votes_sum=views["votes_sum"],
        median_rt=views["median_rt"],
        d_u=views["d_u"],
        topic_sum=views["topic_sum"],
        seg_start=seg_start,
        hist_topics=views["hist_topics"],
        hist_votes=views["hist_votes"],
        hist_answer_topics=views["hist_answer_topics"],
        times_sorted=views["times_sorted"],
        time_rank=views["time_rank"],
        row_of=row_of,
        dup_users=dup_users,
    )


def build_worker_from_shm(payload: ShmShardPayload) -> ShardWorker:
    """ShardPool factory for the shm transport: map blocks, rebuild state.

    Runs inside the worker process.  Attaches the epoch's global and
    per-shard blocks zero-copy, reconstructs the derived dict
    structures, and returns a :class:`ShardWorker` that owns the two
    mappings (closed again by :meth:`ShardWorker.release` on the next
    epoch swap or at teardown).
    """
    g_shm, g_views = shm_attach(payload.global_manifest)
    s_shm, s_views = shm_attach(payload.shard_manifest)
    for view in (*g_views.values(), *s_views.values()):
        view.flags.writeable = False
    g = pickle.loads(g_views["globals_pickle"].tobytes())
    tables = _tables_from_views(s_views)
    # Arrival-order response times reconstructed from the sorted block:
    # row j's time is its block's sorted array at the row's rank.
    rt_flat = (
        tables.times_sorted[
            np.repeat(tables.seg_start, tables.n) + tables.time_rank
        ]
        if int(tables.n.sum())
        else np.empty(0)
    )
    frozen = FrozenState(
        question_info=ColumnQuestionInfo(
            g_views["q_tids"],
            g_views["q_votes"],
            g_views["q_word"],
            g_views["q_code"],
            g_views["q_topics"],
        ),
        histories=_ShardHistories(tables, s_views["hist_tids"], rt_flat),
        questions_asked=g["questions_asked"],
        global_median_response=g["global_median_response"],
        discussed_sum=g["discussed_sum"],
        discussed_count=g["discussed_count"],
        discussed_by_thread=g["discussed_by_thread"],
        thread_sets=g["thread_sets"],
        qa_graph=g["qa_graph"],
        dense_graph=g["dense_graph"],
        qa_closeness=g["qa_closeness"],
        qa_betweenness=g["qa_betweenness"],
        dense_closeness=g["dense_closeness"],
        dense_betweenness=g["dense_betweenness"],
        batch_tables=tables,
        duration_hours=g["duration_hours"],
        n_threads=g["n_threads"],
        fingerprint=g["fingerprint"],
    )
    worker = ShardWorker(
        ShardPayload(
            shard=payload.shard,
            n_shards=payload.n_shards,
            frozen=frozen,
            topics=g["topics"],
            act_users=s_views["act_users"],
            act_counts=s_views["act_counts"],
            act_latest=s_views["act_latest"],
            epoch=payload.epoch,
        )
    )
    worker._shm_handles = [g_shm, s_shm]
    return worker


class ShardedRouter:
    """Shard-parallel drop-in for dense :class:`QuestionRouter` batches.

    Built from a fitted predictor; scoring (and, with a ``retrieval``
    config, candidate generation) fans out over shards while the model
    heads and the exact LP run once in the parent on the merged,
    canonically ordered arrays.  Output contract: bit-identical to the
    dense router called with *sorted* candidates, at any shard count.

    ``mode="process"`` runs shards on persistent worker processes;
    ``mode="inline"`` runs the same worker objects in-process — zero
    IPC, same bits, useful for tests and single-core machines.

    Process-mode state transport is ``transport="shm"`` by default:
    each refit epoch is published once into named shared-memory blocks
    (:mod:`repro.core.shm`) that workers map zero-copy, with workers
    rebuilding the derived dict structures locally.  ``"pickle"``
    ships sliced :class:`FrozenState` objects through the pool pipe
    instead — the pre-shm baseline, kept for benchmarking.  Refits
    swap worker state in place via :meth:`rebind` (epoch-tagged
    handshake) rather than rebuilding pools.
    """

    def __init__(
        self,
        predictor: ForumPredictor,
        n_shards: int,
        *,
        epsilon: float = 0.5,
        default_capacity: float = 1.0,
        retrieval: RetrievalConfig | None = None,
        mode: str = "inline",
        transport: str = "shm",
    ):
        if predictor.extractor is None:
            raise RuntimeError("predictor is not fitted")
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if default_capacity <= 0:
            raise ValueError("default_capacity must be positive")
        if mode not in ("inline", "process"):
            raise ValueError("mode must be 'inline' or 'process'")
        if transport not in ("shm", "pickle"):
            raise ValueError("transport must be 'shm' or 'pickle'")
        self.predictor = predictor
        self.plan = ShardPlan(n_shards)
        self.epsilon = epsilon
        self.default_capacity = default_capacity
        self.retrieval = retrieval
        self.mode = mode
        self.transport = transport  # inline mode shares memory already
        self.epoch = 0
        self._pool: ShardPool | None = None
        self._workers: list[ShardWorker] | None = None
        # Shm blocks backing the epoch the workers currently serve;
        # owned (and eventually unlinked) by this parent process.
        self._published: list = []
        self._shm_bytes = 0
        self._refresh_derived()
        with perf.timer("sharding.build"):
            if mode == "process" and transport == "shm":
                payloads, handles = self._shm_payloads(self.epoch)
                try:
                    self._pool = ShardPool(payloads, build_worker_from_shm)
                except Exception:
                    for handle in handles:
                        shm_unlink(handle)
                    raise
                self._published = handles
            elif mode == "process":
                self._pool = ShardPool(
                    self._object_payloads(self.epoch), ShardWorker
                )
            else:
                self._workers = [
                    ShardWorker(p)
                    for p in self._object_payloads(self.epoch)
                ]
        atexit.register(self.close)
        perf.incr("sharding.routers_built")

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def shm_bytes(self) -> int:
        """Bytes of shard state currently published in shared memory."""
        return self._shm_bytes

    def _two_stage(self) -> bool:
        return self.retrieval is not None and self.retrieval.mode == "two_stage"

    def _refresh_derived(self) -> None:
        """Recompute the parent-side views of the predictor's state."""
        frozen = self.predictor.extractor.frozen
        self._frozen = frozen
        tables = frozen.batch_tables
        table_users = np.fromiter(
            tables.user_index, dtype=np.int64, count=len(tables.user_index)
        )
        if self._two_stage():
            self._act = _window_activity(self.predictor.extractor.window)
        else:
            self._act = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0),
            )
        # Users any index has evidence about; candidates outside this
        # set are kept in every pool unconditionally (same rule as
        # CandidateRetriever.pool).
        self._known = np.union1d(table_users, self._act[0])
        self._slim_topics = TopicModelContext(
            self.predictor.topics.vocabulary, self.predictor.topics.model, {}
        )

    def _shard_users(self, shard: int) -> list[int]:
        return [
            u
            for u in self._frozen.batch_tables.user_index
            if u % self.n_shards == shard
        ]

    def _object_payloads(self, epoch: int) -> list[ShardPayload]:
        """Sliced-object payloads (inline mode and pickle transport)."""
        act_users, act_counts, act_latest = self._act
        payloads = []
        for shard in range(self.n_shards):
            m = self.plan.mask(act_users, shard)
            payloads.append(
                ShardPayload(
                    shard=shard,
                    n_shards=self.n_shards,
                    frozen=slice_frozen(
                        self._frozen, self._shard_users(shard)
                    ),
                    topics=self._slim_topics,
                    act_users=act_users[m],
                    act_counts=act_counts[m],
                    act_latest=act_latest[m],
                    epoch=epoch,
                )
            )
        return payloads

    def _shm_payloads(
        self, epoch: int
    ) -> tuple[list[ShmShardPayload], list]:
        """Publish one epoch into shm; returns (payloads, owned handles).

        One global block (question columns + pickled small-globals
        blob) plus one block per shard.  The caller owns the handles
        and must :func:`~repro.core.shm.unlink` them when the epoch is
        retired.
        """
        frozen = self._frozen
        tables = frozen.batch_tables
        q_tids, q_votes, q_word, q_code, q_topics = _question_columns(frozen)
        blob = pickle.dumps(
            {
                "topics": self._slim_topics,
                "questions_asked": frozen.questions_asked,
                "global_median_response": frozen.global_median_response,
                "discussed_sum": frozen.discussed_sum,
                "discussed_count": frozen.discussed_count,
                "discussed_by_thread": frozen.discussed_by_thread,
                "thread_sets": frozen.thread_sets,
                "qa_graph": frozen.qa_graph,
                "dense_graph": frozen.dense_graph,
                "qa_closeness": frozen.qa_closeness,
                "qa_betweenness": frozen.qa_betweenness,
                "dense_closeness": frozen.dense_closeness,
                "dense_betweenness": frozen.dense_betweenness,
                "duration_hours": frozen.duration_hours,
                "n_threads": frozen.n_threads,
                "fingerprint": frozen.fingerprint,
            }
        )
        handles: list = []
        try:
            g_shm, g_manifest = shm_publish(
                {
                    "q_tids": q_tids,
                    "q_votes": q_votes,
                    "q_word": q_word,
                    "q_code": q_code,
                    "q_topics": q_topics,
                    "globals_pickle": np.frombuffer(blob, dtype=np.uint8),
                },
                f"e{epoch}-global",
            )
            handles.append(g_shm)
            act_users, act_counts, act_latest = self._act
            payloads = []
            for shard in range(self.n_shards):
                arrays = _sliced_shard_arrays(
                    tables, frozen.histories, self._shard_users(shard)
                )
                m = self.plan.mask(act_users, shard)
                arrays["act_users"] = act_users[m]
                arrays["act_counts"] = act_counts[m]
                arrays["act_latest"] = act_latest[m]
                s_shm, s_manifest = shm_publish(
                    arrays, f"e{epoch}-s{shard}"
                )
                handles.append(s_shm)
                payloads.append(
                    ShmShardPayload(
                        shard=shard,
                        n_shards=self.n_shards,
                        epoch=epoch,
                        global_manifest=g_manifest,
                        shard_manifest=s_manifest,
                    )
                )
        except Exception:
            for handle in handles:
                shm_unlink(handle)
            raise
        self._shm_bytes = sum(h.size for h in handles)
        perf.gauge_max("sharding.shm_bytes", self._shm_bytes)
        return payloads, handles

    # -- refit handshake -----------------------------------------------------

    def rebind(self, predictor: ForumPredictor) -> None:
        """Swap every shard onto ``predictor``'s freshly refit state.

        Epoch-tagged handshake: the new epoch is published (shm) or
        sliced (pickle/inline), every worker builds its replacement
        state *before* releasing the old one and echoes the epoch tag
        back; only once all shards have acknowledged does the parent
        retire the previous epoch's blocks.  A refit therefore swaps
        worker views atomically per shard instead of tearing down and
        re-spawning the pool.
        """
        if predictor.extractor is None:
            raise RuntimeError("predictor is not fitted")
        self.predictor = predictor
        self._refresh_derived()
        epoch = self.epoch + 1
        with perf.timer("sharding.publish"):
            handles: list = []
            if self._pool is not None:
                if self.transport == "shm":
                    payloads, handles = self._shm_payloads(epoch)
                    factory = build_worker_from_shm
                else:
                    payloads = self._object_payloads(epoch)
                    factory = ShardWorker
                try:
                    acks = self._pool.swap_all(factory, payloads)
                except Exception:
                    for handle in handles:
                        shm_unlink(handle)
                    raise
                if acks != [epoch] * self.n_shards:
                    for handle in handles:
                        shm_unlink(handle)
                    raise RuntimeError(
                        f"shard epoch handshake failed: got {acks}, "
                        f"expected {epoch} from every shard"
                    )
            else:
                self._workers = [
                    ShardWorker(p) for p in self._object_payloads(epoch)
                ]
        stale, self._published = self._published, handles
        self.epoch = epoch
        # Linux unlinks while mapped: the old blocks vanish from the
        # namespace now and their memory goes when the last worker
        # mapping closed in the swap.
        for handle in stale:
            shm_unlink(handle)
        perf.incr("sharding.rebinds")

    def _scatter(self, method: str, *args) -> list:
        """Run ``method(*args)`` on every shard; results in shard order.

        Per-shard gather latency (scatter start to result in hand) is
        recorded under ``sharding.scatter.shard<i>``.
        """
        started = time.perf_counter()
        if self._pool is not None:
            futures = [
                self._pool.submit(shard, method, *args)
                for shard in range(self.plan.n_shards)
            ]
            results = []
            for shard, future in enumerate(futures):
                results.append(future.result())
                perf.record_latency(
                    f"sharding.scatter.shard{shard}",
                    time.perf_counter() - started,
                )
            return results
        results = []
        for shard, worker in enumerate(self._workers):
            t0 = time.perf_counter()
            results.append(getattr(worker, method)(*args))
            perf.record_latency(
                f"sharding.scatter.shard{shard}", time.perf_counter() - t0
            )
        return results

    # -- candidate generation ------------------------------------------------

    def candidate_pools(
        self, threads: list[Thread], candidates: np.ndarray
    ) -> list[np.ndarray]:
        """Fused candidate pool per thread (two-stage config required).

        Shards generate local top-k lists; the parent merges them under
        the exact global sort keys and fuses with RRF, so the pools do
        not depend on the shard count.
        """
        cfg = self.retrieval
        if cfg is None:
            raise RuntimeError("candidate generation needs a retrieval config")
        candidates = np.sort(np.asarray(candidates, dtype=np.int64))
        thetas = np.stack(
            [
                self.predictor.topics.post_topics(t.question)
                for t in threads
            ]
        )
        with perf.timer("sharding.generate"):
            shard_gen = self._scatter(
                "generate", thetas, cfg.topic_top_k, cfg.recency_top_k
            )
            act_ids = np.concatenate([g["activity"][0] for g in shard_gen])
            act_counts = np.concatenate([g["activity"][1] for g in shard_gen])
            act_latest = np.concatenate([g["activity"][2] for g in shard_gen])
            order = np.lexsort((act_ids, -act_latest, -act_counts))
            activity_ranked = act_ids[order][: cfg.recency_top_k]
            pools = []
            for i in range(len(threads)):
                t_ids = np.concatenate(
                    [g["topic"][i][0] for g in shard_gen]
                )
                t_scores = np.concatenate(
                    [g["topic"][i][1] for g in shard_gen]
                )
                order = np.lexsort((t_ids, -t_scores))
                topic_ranked = t_ids[order][: cfg.topic_top_k]
                fused = reciprocal_rank_fusion(
                    [topic_ranked, activity_ranked],
                    rrf_k=cfg.rrf_k,
                    pool_size=cfg.pool_size,
                )
                pool = np.union1d(
                    candidates[_sorted_member(candidates, fused)],
                    candidates[~_sorted_member(candidates, self._known)],
                )
                pools.append(pool)
        perf.incr("sharding.pools_generated", len(pools))
        return pools

    # -- feature extraction --------------------------------------------------

    def feature_rows(
        self,
        threads: list[Thread],
        users_per_thread: list[np.ndarray],
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Canonically merged ``(users, feature_rows)`` per thread.

        ONE scatter covers the whole batch: every shard featurizes its
        slice of every thread's pool in a single call, then the parent
        restores exact ascending-user order per thread (shards
        partition users disjointly and return them sorted, so a stable
        argsort over the concatenation is the dense row order).  ``x``
        is ``None`` for threads whose pool hit no shard user — the
        caller decides what an empty matrix means.  This is the serving
        hot path's entry point; :meth:`route_batch` layers the model
        heads and LP tail on top.
        """
        pools = [
            np.asarray(users, dtype=np.int64) for users in users_per_thread
        ]
        with perf.timer("sharding.score"):
            shard_scores = self._scatter("score", threads, pools)
        merged: list[tuple[np.ndarray, np.ndarray | None]] = []
        with perf.timer("sharding.merge"):
            for i in range(len(threads)):
                user_parts = []
                x_parts = []
                for shard_result in shard_scores:
                    users, x = shard_result[i]
                    if users.size:
                        user_parts.append(users)
                        x_parts.append(x)
                if not user_parts:
                    merged.append((np.empty(0, dtype=np.int64), None))
                    continue
                users = np.concatenate(user_parts)
                x = np.concatenate(x_parts, axis=0)
                # Canonical merge: shards partition users disjointly and
                # return them ascending, so one stable argsort restores
                # the exact dense (sorted-candidate) row order.
                order = np.argsort(users, kind="stable")
                merged.append((users[order], x[order]))
        return merged

    # -- routing -------------------------------------------------------------

    def route(
        self,
        thread: Thread,
        candidates,
        *,
        tradeoff: float = 0.1,
        recent_load: dict[int, int] | None = None,
        capacities: dict[int, float] | None = None,
    ) -> RoutingResult | None:
        return self.route_batch(
            [thread],
            candidates,
            tradeoff=tradeoff,
            recent_load=recent_load,
            capacities=capacities,
        )[0]

    def route_batch(
        self,
        threads: list[Thread],
        candidates,
        *,
        tradeoff: float = 0.1,
        recent_load: dict[int, int] | None = None,
        capacities: dict[int, float] | None = None,
    ) -> list[RoutingResult | None]:
        """Sec.-V routing for a batch of questions over shared candidates.

        ``recent_load``/``capacities`` apply to every thread in the
        batch (one load snapshot per call, matching a replay step).
        Results are in thread order; ``None`` where nobody is eligible
        or capacity is infeasible — exactly the dense router's contract.
        """
        candidates = np.sort(np.asarray(candidates, dtype=np.int64))
        if candidates.size == 0:
            return [None] * len(threads)
        if self._two_stage():
            pools = self.candidate_pools(threads, candidates)
            pool_sizes: list[int | None] = [int(p.size) for p in pools]
        else:
            pools = [candidates] * len(threads)
            pool_sizes = [None] * len(threads)
        rows = self.feature_rows(threads, pools)
        results: list[RoutingResult | None] = []
        for i, thread in enumerate(threads):
            users, x = rows[i]
            if x is None:
                results.append(None)
                continue
            horizons = np.full(
                users.size,
                float(self.predictor._horizons([thread])[0]),
            )
            answer = self.predictor.answer_model.predict_proba(x)
            votes = self.predictor.vote_model.predict(x)
            times = self.predictor.timing_model.predict(x, horizons)
            eligible = np.flatnonzero(answer >= self.epsilon)
            if eligible.size == 0:
                results.append(None)
                continue
            results.append(
                finish_recommendation(
                    thread.thread_id,
                    users[eligible],
                    answer[eligible],
                    votes[eligible],
                    times[eligible],
                    tradeoff=tradeoff,
                    recent_load=recent_load,
                    capacities=capacities,
                    default_capacity=self.default_capacity,
                    pool_size=pool_sizes[i],
                )
            )
        perf.incr("sharding.questions_routed", len(threads))
        return results

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut shard workers down and retire the published shm blocks.

        Idempotent; also registered with ``atexit`` so an abandoned
        router cannot leave orphan worker processes or ``/dev/shm``
        blocks behind.  Inline workers survive close (they are plain
        in-process objects), preserving the pre-existing contract.
        """
        atexit.unregister(self.close)
        if self._pool is not None:
            self._pool.release_all()
            self._pool.close()
            self._pool = None
        stale, self._published = self._published, []
        self._shm_bytes = 0
        for handle in stale:
            shm_unlink(handle)

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
