"""Task (i): will user u answer question q?  (Paper Sec. II-A.1.)

A logistic regression on standardized features — deliberately linear to
avoid overfitting the extremely sparse answering matrix.
"""

from __future__ import annotations

import numpy as np

from ..ml.logistic import LogisticRegression
from ..ml.scaler import StandardScaler

__all__ = ["AnswerModel"]


class AnswerModel:
    """Standardized logistic regression for P(a_uq = 1 | x_uq)."""

    def __init__(self, l2: float = 1e-2, max_iter: int = 1500):
        self.scaler = StandardScaler(clip=8.0)
        self.classifier = LogisticRegression(l2=l2, max_iter=max_iter)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AnswerModel":
        """Fit on feature rows and binary answer labels."""
        z = self.scaler.fit_transform(np.asarray(x, dtype=float))
        self.classifier.fit(z, np.asarray(y, dtype=float))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(answer) per row."""
        return self.classifier.predict_proba(
            self.scaler.transform(np.atleast_2d(np.asarray(x, dtype=float)))
        )

    @property
    def coefficients(self) -> np.ndarray:
        """Regression weights beta (on the standardized features)."""
        if self.classifier.coef_ is None:
            raise RuntimeError("model is not fitted")
        return self.classifier.coef_
