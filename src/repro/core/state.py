"""Incremental forum state engine.

:class:`ForumState` is a mutable, windowed view of the forum that owns
everything the feature layer used to rescan from scratch on every fit:
per-question :class:`QuestionInfo`, per-user answer histories,
discussed-topic aggregates, thread co-occurrence sets, and the two SLN
edge multisets.  ``append(thread)`` applies one thread's delta,
``evict(before_hours)`` slides the window forward, and ``freeze()``
materializes the read-only tables (:class:`FrozenState`) a
:class:`~repro.core.features.FeatureExtractor` computes features from.

Freezing is incremental where it matters: per-user reductions (medians,
topic means, sorted response times) are cached and recomputed only for
users whose history changed since the previous freeze, and graph
centralities are recomputed only when the edge *set* actually changed
(tracked by :class:`~repro.graphs.EdgeMultiset` versions).

Determinism contract: a state reached by any append/evict history holds
tables bit-identical to a state built fresh from the same thread window
(``ForumState.from_dataset``).  Three rules make that hold:

* threads must be appended in chronological order, so per-user row
  lists always match the fresh-build iteration order;
* cached per-user aggregates are pure functions of the row lists;
* graphs are rebuilt in canonical (sorted) order before centralities,
  so set-iteration order never depends on the mutation history.

The online loop relies on this to make its incremental refit path
produce the exact same :class:`OnlineReport` as a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset, fingerprint_threads
from ..forum.models import Thread
from ..graphs import (
    EdgeMultiset,
    UndirectedGraph,
    betweenness_centrality,
    closeness_centrality,
    dense_links,
    qa_links,
)
from ..topics.tokenizer import split_text_and_code
from .topic_context import TopicModelContext

__all__ = [
    "QuestionInfo",
    "ForumState",
    "FrozenState",
    "question_info_from_thread",
]


@dataclass(frozen=True)
class QuestionInfo:
    """Per-question quantities: votes, lengths and topic distribution."""

    votes: float
    word_length: float
    code_length: float
    topics: np.ndarray


@dataclass
class _UserHistory:
    """A user's answering history inside the feature window."""

    answered_thread_ids: np.ndarray  # (n_i,)
    answered_question_topics: np.ndarray  # (n_i, K)
    answer_votes: np.ndarray  # (n_i,)
    response_times: np.ndarray  # (n_i,)
    answer_topic_vectors: np.ndarray  # (n_i, K) topics of the answers themselves


@dataclass
class _BatchTables:
    """Flat per-user aggregate tables backing the batch feature engine.

    Histories are concatenated row-wise (``seg_start`` delimits each
    user's block) so whole pair batches reduce with one segmented sum
    instead of per-user Python.  ``times_sorted``/``time_rank`` hold
    each user's response times sorted within its block, which turns the
    leave-one-row-out median into index arithmetic.  Users listed in
    ``dup_users`` answered some thread more than once (pre-preprocessing
    data) and take the masked fallback path instead of ``row_of``.
    """

    user_index: dict[int, int]  # user id -> row in the per-user tables
    n: np.ndarray  # (U,) history lengths
    votes_sum: np.ndarray  # (U,)
    median_rt: np.ndarray  # (U,)
    d_u: np.ndarray  # (U, K) answer_topic_vectors.mean(axis=0)
    topic_sum: np.ndarray  # (U, K) answer_topic_vectors.sum(axis=0)
    seg_start: np.ndarray  # (U,) offsets into the concatenated rows
    hist_topics: np.ndarray  # (N, K) answered_question_topics, concatenated
    hist_votes: np.ndarray  # (N,)
    hist_answer_topics: np.ndarray  # (N, K)
    times_sorted: np.ndarray  # (N,) response times, sorted per user block
    time_rank: np.ndarray  # (N,) history row -> rank within its block
    row_of: dict[tuple[int, int], int]  # (user, tid) -> concatenated row
    dup_users: set[int]


def question_info_from_thread(
    thread: Thread, topics: TopicModelContext
) -> QuestionInfo:
    """Question-side quantities of one thread under a topic context."""
    split = split_text_and_code(thread.question.body)
    return QuestionInfo(
        votes=float(thread.question.votes),
        word_length=float(split.word_length),
        code_length=float(split.code_length),
        topics=topics.post_topics(thread.question),
    )


@dataclass
class _AnswerRow:
    """One answer event inside a user's history, in arrival order."""

    thread_id: int
    question_topics: np.ndarray
    votes: float
    response_time: float
    answer_topics: np.ndarray


@dataclass
class _UserSummary:
    """Cached per-user freeze artifacts; valid until the rows change."""

    history: _UserHistory
    votes_sum: float
    median_rt: float
    d_u: np.ndarray
    topic_sum: np.ndarray
    times_sorted: np.ndarray
    time_rank: np.ndarray
    tid_rows: list[tuple[int, int]] | None  # (tid, local row); None if dup


@dataclass(frozen=True)
class FrozenState:
    """Read-only snapshot of one freeze; what the extractor consumes.

    Containers are copies (values are shared immutable artifacts), so
    later ``append``/``evict`` calls on the owning state never leak into
    an extractor already serving predictions.
    """

    question_info: dict[int, QuestionInfo]
    histories: dict[int, _UserHistory]
    questions_asked: dict[int, int]
    global_median_response: float
    discussed_sum: dict[int, np.ndarray]
    discussed_count: dict[int, int]
    discussed_by_thread: dict[int, dict[int, tuple[np.ndarray, int]]]
    thread_sets: dict[int, set[int]]
    qa_graph: UndirectedGraph
    dense_graph: UndirectedGraph
    qa_closeness: dict[int, float]
    qa_betweenness: dict[int, float]
    dense_closeness: dict[int, float]
    dense_betweenness: dict[int, float]
    batch_tables: _BatchTables
    duration_hours: float
    n_threads: int
    fingerprint: str


class ForumState:
    """Mutable windowed forum view with delta updates and lazy freezing."""

    def __init__(self, topics: TopicModelContext):
        self.topics = topics
        self._threads: dict[int, Thread] = {}
        self._last_created = float("-inf")
        self._num_answers = 0
        self._question_info: dict[int, QuestionInfo] = {}
        self._rows: dict[int, list[_AnswerRow]] = {}
        self._questions_asked: dict[int, int] = {}
        # Per-user, per-thread discussed-topic contributions, insertion
        # (= chronological) ordered: user -> {tid: (topic sum, n posts)}.
        self._discussed: dict[int, dict[int, tuple[np.ndarray, int]]] = {}
        self._thread_sets: dict[int, set[int]] = {}
        self._qa = EdgeMultiset(qa_links)
        self._dense = EdgeMultiset(dense_links)
        # Freeze caches.
        self._dirty_users: set[int] = set()
        self._summaries: dict[int, _UserSummary] = {}
        self._dirty_discussed: set[int] = set()
        self._discussed_totals: dict[int, tuple[np.ndarray, int]] = {}
        self._rt_dirty = True
        self._global_median = 1.0
        self._centrality_key: tuple | None = None
        self._centralities: tuple[dict, dict, dict, dict] | None = None
        self._frozen: FrozenState | None = None
        self._frozen_key: tuple | None = None
        # Mutation listeners (candidate indices, monitors): objects with
        # ``on_append(thread)`` / ``on_evict(thread)`` hooks, notified
        # after each delta so derived structures update incrementally
        # instead of rebuilding from the window.
        self._listeners: list = []

    @classmethod
    def from_dataset(
        cls, window: ForumDataset, topics: TopicModelContext
    ) -> "ForumState":
        """State holding exactly the window's threads (chronological)."""
        state = cls(topics)
        for thread in window:
            state.append(thread)
        return state

    # -- basic access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._threads)

    def __contains__(self, thread_id: int) -> bool:
        return thread_id in self._threads

    @property
    def num_answers(self) -> int:
        return self._num_answers

    @property
    def last_created(self) -> float:
        """Creation time of the newest appended thread (-inf when empty).

        ``append`` rejects anything older; resilient consumers check
        against this clock before folding a repaired event in.
        """
        return self._last_created

    @property
    def answerers(self) -> set[int]:
        return set(self._rows)

    @property
    def duration_hours(self) -> float:
        """Timestamp of the last post held (paper's horizon T)."""
        last = 0.0
        for t in self._threads.values():
            last = max(last, t.created_at)
            if t.answers:
                last = max(last, t.answers[-1].timestamp)
        return last

    def to_dataset(self) -> ForumDataset:
        """The held threads as an immutable :class:`ForumDataset`."""
        return ForumDataset(self._threads.values())

    def fingerprint(self) -> str:
        """Digest of the held (thread_id, created_at) pairs."""
        return fingerprint_threads(self._threads.values())

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register for ``on_append``/``on_evict`` mutation callbacks."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- mutation -------------------------------------------------------------

    def append(self, thread: Thread) -> None:
        """Fold one arriving thread (question + its answers) into the state."""
        tid = thread.thread_id
        if tid in self._threads:
            raise ValueError(f"thread {tid} already in state")
        if thread.created_at < self._last_created:
            raise ValueError(
                "threads must be appended in chronological order "
                f"(got {thread.created_at} after {self._last_created})"
            )
        with perf.timer("state.append"):
            self._last_created = thread.created_at
            self._threads[tid] = thread
            info = question_info_from_thread(thread, self.topics)
            self._question_info[tid] = info
            asker = thread.asker
            self._questions_asked[asker] = self._questions_asked.get(asker, 0) + 1
            for answer in thread.answers:
                self._rows.setdefault(answer.author, []).append(
                    _AnswerRow(
                        thread_id=tid,
                        question_topics=info.topics,
                        votes=float(answer.votes),
                        response_time=answer.timestamp - thread.created_at,
                        answer_topics=self.topics.post_topics(answer),
                    )
                )
                self._dirty_users.add(answer.author)
            self._num_answers += len(thread.answers)
            if thread.answers:
                self._rt_dirty = True
            k = self.topics.n_topics
            for post in thread.posts:
                d = self.topics.post_topics(post)
                per_user = self._discussed.setdefault(post.author, {})
                prev_sum, prev_count = per_user.get(tid, (np.zeros(k), 0))
                per_user[tid] = (prev_sum + d, prev_count + 1)
                self._dirty_discussed.add(post.author)
            answerers = thread.answerers
            for user in {asker, *answerers}:
                self._thread_sets.setdefault(user, set()).add(tid)
            self._qa.add_thread(asker, answerers)
            self._dense.add_thread(asker, answerers)
            self._frozen = None
        for listener in self._listeners:
            listener.on_append(thread)
        perf.incr("state.threads_appended")

    def evict(self, before_hours: float) -> int:
        """Drop threads created before ``before_hours``; returns the count."""
        stale = []
        for thread in self._threads.values():
            if thread.created_at >= before_hours:
                break  # appends are chronological, so iteration is too
            stale.append(thread)
        with perf.timer("state.evict"):
            for thread in stale:
                self._remove_thread(thread)
            if stale:
                self._frozen = None
        for thread in stale:
            for listener in self._listeners:
                listener.on_evict(thread)
        perf.incr("state.threads_evicted", len(stale))
        return len(stale)

    def _remove_thread(self, thread: Thread) -> None:
        tid = thread.thread_id
        del self._threads[tid]
        del self._question_info[tid]
        asker = thread.asker
        remaining = self._questions_asked[asker] - 1
        if remaining:
            self._questions_asked[asker] = remaining
        else:
            del self._questions_asked[asker]
        answerers = thread.answerers
        for user in answerers:
            rows = [r for r in self._rows[user] if r.thread_id != tid]
            if rows:
                self._rows[user] = rows
                self._dirty_users.add(user)
            else:
                del self._rows[user]
                self._dirty_users.discard(user)
                self._summaries.pop(user, None)
        self._num_answers -= len(thread.answers)
        if thread.answers:
            self._rt_dirty = True
        for user in {post.author for post in thread.posts}:
            per_user = self._discussed[user]
            del per_user[tid]
            if per_user:
                self._dirty_discussed.add(user)
            else:
                del self._discussed[user]
                self._dirty_discussed.discard(user)
                self._discussed_totals.pop(user, None)
        for user in {asker, *answerers}:
            members = self._thread_sets[user]
            members.discard(tid)
            if not members:
                del self._thread_sets[user]
        self._qa.remove_thread(asker, answerers)
        self._dense.remove_thread(asker, answerers)

    # -- freezing -------------------------------------------------------------

    def _refresh_summaries(self) -> None:
        k = self.topics.n_topics
        refreshed = 0
        for user in self._dirty_users:
            rows = self._rows.get(user)
            if rows is None:
                self._summaries.pop(user, None)
                continue
            n = len(rows)
            history = _UserHistory(
                answered_thread_ids=np.array(
                    [r.thread_id for r in rows], dtype=int
                ),
                answered_question_topics=np.array(
                    [r.question_topics for r in rows]
                ).reshape(n, k),
                answer_votes=np.array([r.votes for r in rows]),
                response_times=np.array([r.response_time for r in rows]),
                answer_topic_vectors=np.array(
                    [r.answer_topics for r in rows]
                ).reshape(n, k),
            )
            order = np.argsort(history.response_times, kind="stable")
            rank = np.empty(n, dtype=np.int64)
            rank[order] = np.arange(n)
            tids = history.answered_thread_ids.tolist()
            tid_rows: list[tuple[int, int]] | None
            if len(set(tids)) != len(tids):
                tid_rows = None
            else:
                tid_rows = list(zip(tids, range(n)))
            self._summaries[user] = _UserSummary(
                history=history,
                votes_sum=float(history.answer_votes.sum()),
                median_rt=float(np.median(history.response_times)),
                d_u=history.answer_topic_vectors.mean(axis=0),
                topic_sum=history.answer_topic_vectors.sum(axis=0),
                times_sorted=history.response_times[order],
                time_rank=rank,
                tid_rows=tid_rows,
            )
            refreshed += 1
        self._dirty_users.clear()
        perf.incr("state.users_refreshed", refreshed)

    def _refresh_discussed(self) -> None:
        k = self.topics.n_topics
        for user in self._dirty_discussed:
            per_user = self._discussed.get(user)
            if per_user is None:
                self._discussed_totals.pop(user, None)
                continue
            total = np.zeros(k)
            count = 0
            for vec, n_posts in per_user.values():
                total = total + vec
                count += n_posts
            self._discussed_totals[user] = (total, count)
        self._dirty_discussed.clear()

    def _assemble_tables(self) -> _BatchTables:
        k = self.topics.n_topics
        # Canonical (sorted) user layout: the dict's insertion order
        # depends on the append/evict history, and the tables must be
        # identical however the window was reached.
        users = sorted(self._rows)
        u_count = len(users)
        counts = np.array(
            [len(self._rows[u]) for u in users], dtype=np.int64
        )
        total = int(counts.sum())
        seg_start = np.zeros(u_count, dtype=np.int64)
        if u_count > 1:
            np.cumsum(counts[:-1], out=seg_start[1:])
        votes_sum = np.empty(u_count)
        median_rt = np.empty(u_count)
        d_u = np.empty((u_count, k))
        topic_sum = np.empty((u_count, k))
        hist_topics = np.empty((total, k))
        hist_votes = np.empty(total)
        hist_answer_topics = np.empty((total, k))
        times_sorted = np.empty(total)
        time_rank = np.empty(total, dtype=np.int64)
        row_of: dict[tuple[int, int], int] = {}
        dup_users: set[int] = set()
        for ui, user in enumerate(users):
            s = self._summaries[user]
            lo = int(seg_start[ui])
            hi = lo + int(counts[ui])
            votes_sum[ui] = s.votes_sum
            median_rt[ui] = s.median_rt
            d_u[ui] = s.d_u
            topic_sum[ui] = s.topic_sum
            h = s.history
            hist_topics[lo:hi] = h.answered_question_topics
            hist_votes[lo:hi] = h.answer_votes
            hist_answer_topics[lo:hi] = h.answer_topic_vectors
            times_sorted[lo:hi] = s.times_sorted
            time_rank[lo:hi] = s.time_rank
            if s.tid_rows is None:
                dup_users.add(user)
            else:
                for tid, row in s.tid_rows:
                    row_of[(user, tid)] = lo + row
        return _BatchTables(
            user_index={u: ui for ui, u in enumerate(users)},
            n=counts,
            votes_sum=votes_sum,
            median_rt=median_rt,
            d_u=d_u,
            topic_sum=topic_sum,
            seg_start=seg_start,
            hist_topics=hist_topics,
            hist_votes=hist_votes,
            hist_answer_topics=hist_answer_topics,
            times_sorted=times_sorted,
            time_rank=time_rank,
            row_of=row_of,
            dup_users=dup_users,
        )

    def _refresh_centralities(
        self, betweenness_sample_size: int | None, seed: int
    ) -> tuple[dict, dict, dict, dict]:
        key = (self._qa.version, self._dense.version, betweenness_sample_size, seed)
        if self._centrality_key == key and self._centralities is not None:
            perf.incr("state.centrality_cache_hits")
            return self._centralities
        with perf.timer("state.centrality"):
            qa_graph = self._qa.graph()
            dense_graph = self._dense.graph()
            self._centralities = (
                closeness_centrality(qa_graph),
                betweenness_centrality(
                    qa_graph,
                    sample_sources=betweenness_sample_size,
                    seed=seed,
                ),
                closeness_centrality(dense_graph),
                betweenness_centrality(
                    dense_graph,
                    sample_sources=betweenness_sample_size,
                    seed=seed,
                ),
            )
        self._centrality_key = key
        return self._centralities

    def freeze(
        self, *, betweenness_sample_size: int | None = None, seed: int = 0
    ) -> FrozenState:
        """Materialize the read-only tables for the current window.

        Unchanged per-user blocks and unchanged graph topologies are
        served from caches; a repeated call with the same parameters on
        an unmutated state returns the previous snapshot.
        """
        key = (betweenness_sample_size, seed)
        if self._frozen is not None and self._frozen_key == key:
            return self._frozen
        with perf.timer("state.freeze"):
            self._refresh_summaries()
            self._refresh_discussed()
            if self._rt_dirty:
                all_times = [
                    r.response_time
                    for rows in self._rows.values()
                    for r in rows
                ]
                self._global_median = (
                    float(np.median(all_times)) if all_times else 1.0
                )
                self._rt_dirty = False
            qa_clo, qa_bet, dense_clo, dense_bet = self._refresh_centralities(
                betweenness_sample_size, seed
            )
            self._frozen = FrozenState(
                question_info=dict(self._question_info),
                histories={
                    u: self._summaries[u].history for u in self._rows
                },
                questions_asked=dict(self._questions_asked),
                global_median_response=self._global_median,
                discussed_sum={
                    u: total for u, (total, _) in self._discussed_totals.items()
                },
                discussed_count={
                    u: count for u, (_, count) in self._discussed_totals.items()
                },
                discussed_by_thread={
                    u: dict(per) for u, per in self._discussed.items()
                },
                thread_sets={u: set(s) for u, s in self._thread_sets.items()},
                qa_graph=self._qa.graph(),
                dense_graph=self._dense.graph(),
                qa_closeness=qa_clo,
                qa_betweenness=qa_bet,
                dense_closeness=dense_clo,
                dense_betweenness=dense_bet,
                batch_tables=self._assemble_tables(),
                duration_hours=self.duration_hours,
                n_threads=len(self._threads),
                fingerprint=self.fingerprint(),
            )
            self._frozen_key = key
        return self._frozen
