"""Incremental forum state engine.

:class:`ForumState` is a mutable, windowed view of the forum that owns
everything the feature layer used to rescan from scratch on every fit:
per-question :class:`QuestionInfo`, per-user answer histories,
discussed-topic aggregates, thread co-occurrence sets, and the two SLN
edge multisets.  ``append(thread)`` applies one thread's delta,
``evict(before_hours)`` slides the window forward, and ``freeze()``
materializes the read-only tables (:class:`FrozenState`) a
:class:`~repro.core.features.FeatureExtractor` computes features from.

Answer events are stored columnar: one row per answer in an append-only
:class:`~repro.core.columnar.AnswerLog` (contiguous numpy segments,
``int32`` ids / ``float32`` votes), with the per-user view reduced to a
list of row ids.  Freezing gathers rows by fancy indexing instead of
walking python objects, and eviction tombstones rows until a compaction
pass rewrites the log (when dead rows outnumber live ones).

Freezing is incremental where it matters: per-user reductions (medians,
topic means, sorted response times) are cached and recomputed only for
users whose history changed since the previous freeze, and graph
centralities are recomputed only when the edge *set* actually changed
(tracked by :class:`~repro.graphs.EdgeMultiset` versions).

Determinism contract: a state reached by any append/evict history holds
tables bit-identical to a state built fresh from the same thread window
(``ForumState.from_dataset``).  Three rules make that hold:

* threads must be appended in chronological order, so per-user row
  lists always match the fresh-build iteration order;
* cached per-user aggregates are pure functions of the gathered rows
  (and row *values* survive compaction unchanged);
* graphs are rebuilt in canonical (sorted) order before centralities,
  so set-iteration order never depends on the mutation history.

The online loop relies on this to make its incremental refit path
produce the exact same :class:`OnlineReport` as a full rebuild, and the
sharded engine (:mod:`repro.core.sharding`) relies on it to make
per-shard table slices exact row-copies of the single-process tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset, fingerprint_threads
from ..forum.models import Thread
from ..graphs import (
    EdgeMultiset,
    UndirectedGraph,
    betweenness_centrality,
    closeness_centrality,
    dense_links,
    qa_links,
)
from ..topics.tokenizer import split_text_and_code
from .columnar import (
    AnswerLog,
    BatchTables,
    EventStore,
    UserHistory,
    UserSummary,
    assemble_tables,
    user_summary,
)
from .dtypes import VALUE_DTYPE
from .topic_context import TopicModelContext

__all__ = [
    "QuestionInfo",
    "ColumnQuestionInfo",
    "ForumState",
    "FrozenState",
    "question_info_from_thread",
    "frozen_from_columns",
]

# Historical aliases: the freeze artifacts moved to ``core.columnar``
# (shared with the shard workers); existing imports keep working.
_UserHistory = UserHistory
_UserSummary = UserSummary
_BatchTables = BatchTables

# Compaction triggers once dead rows outnumber live ones *and* there is
# enough garbage for the rewrite to pay for itself.
_COMPACT_MIN_DEAD = 1024


@dataclass(frozen=True)
class QuestionInfo:
    """Per-question quantities: votes, lengths and topic distribution."""

    votes: float
    word_length: float
    code_length: float
    topics: np.ndarray


def question_info_from_thread(
    thread: Thread, topics: TopicModelContext
) -> QuestionInfo:
    """Question-side quantities of one thread under a topic context."""
    split = split_text_and_code(thread.question.body)
    return QuestionInfo(
        votes=float(thread.question.votes),
        word_length=float(split.word_length),
        code_length=float(split.code_length),
        topics=topics.post_topics(thread.question),
    )


class ColumnQuestionInfo:
    """Read-only ``tid -> QuestionInfo`` mapping over question columns.

    The columnar stand-in for ``FrozenState.question_info``: instead of
    materializing one :class:`QuestionInfo` per question up front (the
    scale path holds hundreds of thousands), it keeps the per-question
    columns as flat arrays — typically zero-copy views into a shared
    memory block — and builds dataclass instances on lookup only.  The
    topic row handed out is a view, never a copy.
    """

    def __init__(self, tids, votes, word_length, code_length, topics):
        self.tids = np.asarray(tids)
        self.votes = np.asarray(votes)
        self.word_length = np.asarray(word_length)
        self.code_length = np.asarray(code_length)
        self.topics = np.asarray(topics)
        self._row = {int(t): i for i, t in enumerate(self.tids.tolist())}

    def get(self, tid: int, default=None):
        i = self._row.get(tid)
        if i is None:
            return default
        return QuestionInfo(
            votes=float(self.votes[i]),
            word_length=float(self.word_length[i]),
            code_length=float(self.code_length[i]),
            topics=self.topics[i],
        )

    def __getitem__(self, tid: int) -> QuestionInfo:
        info = self.get(tid)
        if info is None:
            raise KeyError(tid)
        return info

    def __contains__(self, tid: int) -> bool:
        return tid in self._row

    def __iter__(self):
        return iter(self._row)

    def __len__(self) -> int:
        return len(self._row)


@dataclass(frozen=True)
class FrozenState:
    """Read-only snapshot of one freeze; what the extractor consumes.

    Containers are copies (values are shared immutable artifacts), so
    later ``append``/``evict`` calls on the owning state never leak into
    an extractor already serving predictions.
    """

    question_info: dict[int, QuestionInfo]
    histories: dict[int, UserHistory]
    questions_asked: dict[int, int]
    global_median_response: float
    discussed_sum: dict[int, np.ndarray]
    discussed_count: dict[int, int]
    discussed_by_thread: dict[int, dict[int, tuple[np.ndarray, int]]]
    thread_sets: dict[int, set[int]]
    qa_graph: UndirectedGraph
    dense_graph: UndirectedGraph
    qa_closeness: dict[int, float]
    qa_betweenness: dict[int, float]
    dense_closeness: dict[int, float]
    dense_betweenness: dict[int, float]
    batch_tables: BatchTables
    duration_hours: float
    n_threads: int
    fingerprint: str


class ForumState:
    """Mutable windowed forum view with delta updates and lazy freezing."""

    def __init__(self, topics: TopicModelContext):
        self.topics = topics
        self._threads: dict[int, Thread] = {}
        self._last_created = float("-inf")
        self._num_answers = 0
        self._question_info: dict[int, QuestionInfo] = {}
        # Columnar answer events + per-user row-id lists (arrival order).
        self._log = AnswerLog(topics.n_topics)
        self._user_rows: dict[int, list[int]] = {}
        self._dead_rows = 0
        self._questions_asked: dict[int, int] = {}
        # Per-user, per-thread discussed-topic contributions, insertion
        # (= chronological) ordered: user -> {tid: (topic sum, n posts)}.
        self._discussed: dict[int, dict[int, tuple[np.ndarray, int]]] = {}
        self._thread_sets: dict[int, set[int]] = {}
        self._qa = EdgeMultiset(qa_links)
        self._dense = EdgeMultiset(dense_links)
        # Freeze caches.
        self._dirty_users: set[int] = set()
        self._summaries: dict[int, UserSummary] = {}
        self._dirty_discussed: set[int] = set()
        self._discussed_totals: dict[int, tuple[np.ndarray, int]] = {}
        self._rt_dirty = True
        self._global_median = 1.0
        self._centrality_key: tuple | None = None
        self._centralities: tuple[dict, dict, dict, dict] | None = None
        self._frozen: FrozenState | None = None
        self._frozen_key: tuple | None = None
        # Mutation listeners (candidate indices, monitors): objects with
        # ``on_append(thread)`` / ``on_evict(thread)`` hooks, notified
        # after each delta so derived structures update incrementally
        # instead of rebuilding from the window.
        self._listeners: list = []

    @classmethod
    def from_dataset(
        cls, window: ForumDataset, topics: TopicModelContext
    ) -> "ForumState":
        """State holding exactly the window's threads (chronological)."""
        state = cls(topics)
        for thread in window:
            state.append(thread)
        return state

    # -- basic access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._threads)

    def __contains__(self, thread_id: int) -> bool:
        return thread_id in self._threads

    @property
    def num_answers(self) -> int:
        return self._num_answers

    @property
    def last_created(self) -> float:
        """Creation time of the newest appended thread (-inf when empty).

        ``append`` rejects anything older; resilient consumers check
        against this clock before folding a repaired event in.
        """
        return self._last_created

    @property
    def answerers(self) -> set[int]:
        return set(self._user_rows)

    @property
    def answer_log(self) -> AnswerLog:
        """The columnar answer-event store (includes tombstoned rows)."""
        return self._log

    def answer_events(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(user, thread_id, timestamp)`` columns of the live rows.

        The columnar read path for derived indices (recency, activity):
        one fancy-indexed gather instead of iterating Thread objects.
        """
        if not self._user_rows:
            empty_ids = self._log.column("user")[:0]
            return empty_ids, empty_ids, np.empty(0)
        rows = np.sort(
            np.concatenate(
                [
                    np.asarray(r, dtype=np.int64)
                    for r in self._user_rows.values()
                ]
            )
        )
        return (
            self._log.gather("user", rows),
            self._log.gather("thread_id", rows),
            self._log.gather("timestamp", rows),
        )

    @property
    def duration_hours(self) -> float:
        """Timestamp of the last post held (paper's horizon T)."""
        last = 0.0
        for t in self._threads.values():
            last = max(last, t.created_at)
            if t.answers:
                last = max(last, t.answers[-1].timestamp)
        return last

    def to_dataset(self) -> ForumDataset:
        """The held threads as an immutable :class:`ForumDataset`."""
        return ForumDataset(self._threads.values())

    def fingerprint(self) -> str:
        """Digest of the held (thread_id, created_at) pairs."""
        return fingerprint_threads(self._threads.values())

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register for ``on_append``/``on_evict`` mutation callbacks."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- mutation -------------------------------------------------------------

    def append(self, thread: Thread) -> None:
        """Fold one arriving thread (question + its answers) into the state."""
        tid = thread.thread_id
        if tid in self._threads:
            raise ValueError(f"thread {tid} already in state")
        if thread.created_at < self._last_created:
            raise ValueError(
                "threads must be appended in chronological order "
                f"(got {thread.created_at} after {self._last_created})"
            )
        with perf.timer("state.append"):
            self._last_created = thread.created_at
            self._threads[tid] = thread
            info = question_info_from_thread(thread, self.topics)
            self._question_info[tid] = info
            asker = thread.asker
            self._questions_asked[asker] = self._questions_asked.get(asker, 0) + 1
            if thread.answers:
                answers = thread.answers
                timestamps = np.array([a.timestamp for a in answers])
                start = self._log.append_thread(
                    [a.author for a in answers],
                    tid,
                    np.array(
                        [float(a.votes) for a in answers], dtype=VALUE_DTYPE
                    ),
                    timestamps,
                    timestamps - thread.created_at,
                    info.topics,
                    np.stack(
                        [self.topics.post_topics(a) for a in answers]
                    ),
                )
                for offset, answer in enumerate(answers):
                    self._user_rows.setdefault(answer.author, []).append(
                        start + offset
                    )
                    self._dirty_users.add(answer.author)
                self._rt_dirty = True
            self._num_answers += len(thread.answers)
            k = self.topics.n_topics
            for post in thread.posts:
                d = self.topics.post_topics(post)
                per_user = self._discussed.setdefault(post.author, {})
                prev_sum, prev_count = per_user.get(tid, (np.zeros(k), 0))
                per_user[tid] = (prev_sum + d, prev_count + 1)
                self._dirty_discussed.add(post.author)
            answerers = thread.answerers
            for user in {asker, *answerers}:
                self._thread_sets.setdefault(user, set()).add(tid)
            self._qa.add_thread(asker, answerers)
            self._dense.add_thread(asker, answerers)
            self._frozen = None
        for listener in self._listeners:
            listener.on_append(thread)
        perf.incr("state.threads_appended")

    def evict(self, before_hours: float) -> int:
        """Drop threads created before ``before_hours``; returns the count."""
        stale = []
        for thread in self._threads.values():
            if thread.created_at >= before_hours:
                break  # appends are chronological, so iteration is too
            stale.append(thread)
        with perf.timer("state.evict"):
            for thread in stale:
                self._remove_thread(thread)
            if stale:
                self._frozen = None
                self._maybe_compact()
        for thread in stale:
            for listener in self._listeners:
                listener.on_evict(thread)
        perf.incr("state.threads_evicted", len(stale))
        return len(stale)

    def _remove_thread(self, thread: Thread) -> None:
        tid = thread.thread_id
        del self._threads[tid]
        del self._question_info[tid]
        asker = thread.asker
        remaining = self._questions_asked[asker] - 1
        if remaining:
            self._questions_asked[asker] = remaining
        else:
            del self._questions_asked[asker]
        answerers = thread.answerers
        for user in answerers:
            rows = np.asarray(self._user_rows[user], dtype=np.int64)
            keep = rows[self._log.gather("thread_id", rows) != tid]
            self._dead_rows += rows.size - keep.size
            if keep.size:
                self._user_rows[user] = keep.tolist()
                self._dirty_users.add(user)
            else:
                del self._user_rows[user]
                self._dirty_users.discard(user)
                self._summaries.pop(user, None)
        self._num_answers -= len(thread.answers)
        if thread.answers:
            self._rt_dirty = True
        for user in {post.author for post in thread.posts}:
            per_user = self._discussed[user]
            del per_user[tid]
            if per_user:
                self._dirty_discussed.add(user)
            else:
                del self._discussed[user]
                self._dirty_discussed.discard(user)
                self._discussed_totals.pop(user, None)
        for user in {asker, *answerers}:
            members = self._thread_sets[user]
            members.discard(tid)
            if not members:
                del self._thread_sets[user]
        self._qa.remove_thread(asker, answerers)
        self._dense.remove_thread(asker, answerers)

    def _maybe_compact(self) -> None:
        """Rewrite the log without tombstones once they dominate it.

        Row *values* are unchanged and per-user arrival order is
        preserved (live row ids are remapped monotonically), so every
        cached summary and every future freeze is unaffected.
        """
        if (
            self._dead_rows < _COMPACT_MIN_DEAD
            or self._dead_rows <= self._num_answers
        ):
            return
        with perf.timer("state.compact"):
            if self._user_rows:
                live = np.sort(
                    np.concatenate(
                        [
                            np.asarray(r, dtype=np.int64)
                            for r in self._user_rows.values()
                        ]
                    )
                )
            else:
                live = np.empty(0, dtype=np.int64)
            self._log = self._log.compact(live)
            for user, rows in self._user_rows.items():
                self._user_rows[user] = np.searchsorted(
                    live, np.asarray(rows, dtype=np.int64)
                ).tolist()
            self._dead_rows = 0
        perf.incr("state.log_compactions")

    # -- freezing -------------------------------------------------------------

    def _refresh_summaries(self) -> None:
        refreshed = 0
        for user in self._dirty_users:
            rows = self._user_rows.get(user)
            if rows is None:
                self._summaries.pop(user, None)
                continue
            self._summaries[user] = user_summary(self._log, rows)
            refreshed += 1
        self._dirty_users.clear()
        perf.incr("state.users_refreshed", refreshed)

    def _refresh_discussed(self) -> None:
        k = self.topics.n_topics
        for user in self._dirty_discussed:
            per_user = self._discussed.get(user)
            if per_user is None:
                self._discussed_totals.pop(user, None)
                continue
            total = np.zeros(k)
            count = 0
            for vec, n_posts in per_user.values():
                total = total + vec
                count += n_posts
            self._discussed_totals[user] = (total, count)
        self._dirty_discussed.clear()

    def _assemble_tables(self) -> BatchTables:
        # Canonical (sorted) user layout: the dict's insertion order
        # depends on the append/evict history, and the tables must be
        # identical however the window was reached.
        return assemble_tables(
            self._summaries, sorted(self._user_rows), self.topics.n_topics
        )

    def _refresh_centralities(
        self, betweenness_sample_size: int | None, seed: int
    ) -> tuple[dict, dict, dict, dict]:
        key = (self._qa.version, self._dense.version, betweenness_sample_size, seed)
        if self._centrality_key == key and self._centralities is not None:
            perf.incr("state.centrality_cache_hits")
            return self._centralities
        with perf.timer("state.centrality"):
            qa_graph = self._qa.graph()
            dense_graph = self._dense.graph()
            self._centralities = (
                closeness_centrality(qa_graph),
                betweenness_centrality(
                    qa_graph,
                    sample_sources=betweenness_sample_size,
                    seed=seed,
                ),
                closeness_centrality(dense_graph),
                betweenness_centrality(
                    dense_graph,
                    sample_sources=betweenness_sample_size,
                    seed=seed,
                ),
            )
        self._centrality_key = key
        return self._centralities

    def freeze(
        self, *, betweenness_sample_size: int | None = None, seed: int = 0
    ) -> FrozenState:
        """Materialize the read-only tables for the current window.

        Unchanged per-user blocks and unchanged graph topologies are
        served from caches; a repeated call with the same parameters on
        an unmutated state returns the previous snapshot.
        """
        key = (betweenness_sample_size, seed)
        if self._frozen is not None and self._frozen_key == key:
            return self._frozen
        with perf.timer("state.freeze"):
            self._refresh_summaries()
            self._refresh_discussed()
            if self._rt_dirty:
                if self._user_rows:
                    rows = np.concatenate(
                        [
                            np.asarray(r, dtype=np.int64)
                            for r in self._user_rows.values()
                        ]
                    )
                    self._global_median = float(
                        np.median(self._log.gather("response_time", rows))
                    )
                else:
                    self._global_median = 1.0
                self._rt_dirty = False
            qa_clo, qa_bet, dense_clo, dense_bet = self._refresh_centralities(
                betweenness_sample_size, seed
            )
            self._frozen = FrozenState(
                question_info=dict(self._question_info),
                histories={
                    u: self._summaries[u].history for u in self._user_rows
                },
                questions_asked=dict(self._questions_asked),
                global_median_response=self._global_median,
                discussed_sum={
                    u: total for u, (total, _) in self._discussed_totals.items()
                },
                discussed_count={
                    u: count for u, (_, count) in self._discussed_totals.items()
                },
                discussed_by_thread={
                    u: dict(per) for u, per in self._discussed.items()
                },
                thread_sets={u: set(s) for u, s in self._thread_sets.items()},
                qa_graph=self._qa.graph(),
                dense_graph=self._dense.graph(),
                qa_closeness=qa_clo,
                qa_betweenness=qa_bet,
                dense_closeness=dense_clo,
                dense_betweenness=dense_bet,
                batch_tables=self._assemble_tables(),
                duration_hours=self.duration_hours,
                n_threads=len(self._threads),
                fingerprint=self.fingerprint(),
            )
            self._frozen_key = key
        return self._frozen


def frozen_from_columns(
    log: AnswerLog,
    questions: EventStore,
    *,
    duration_hours: float | None = None,
) -> FrozenState:
    """A servable :class:`FrozenState` built straight from columnar stores.

    The scale path: a streamed forum
    (:func:`~repro.forum.streaming.ingest_to_shards`) has answer rows
    and question columns but no ``Thread`` objects and no post bodies,
    so the structures that need bodies or explicit post lists
    (discussed-topic aggregates, thread co-occurrence sets, SLN graphs
    and centralities) are empty here — the corresponding features
    evaluate to their documented no-evidence defaults.  Everything the
    batch feature engine and the sharded serving path actually reduce
    over — per-user histories, batch tables, per-question info — is
    exact, and ``question_info`` stays columnar
    (:class:`ColumnQuestionInfo`) instead of materializing one
    dataclass per question.
    """
    with perf.timer("state.frozen_from_columns"):
        users_col = log.column("user")
        response_times = log.column("response_time")
        order = np.argsort(users_col, kind="stable")
        sorted_users = users_col[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_users[1:] != sorted_users[:-1]]
        ) if sorted_users.size else np.empty(0, dtype=np.int64)
        ends = np.append(starts[1:], sorted_users.size)
        summaries: dict[int, UserSummary] = {}
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            # Stable argsort keeps each user's rows in arrival order.
            summaries[int(sorted_users[lo])] = user_summary(
                log, order[lo:hi]
            )
        users_sorted = sorted(summaries)
        tables = assemble_tables(summaries, users_sorted, log.n_topics)
        uniq, counts = np.unique(questions.column("asker"), return_counts=True)
        timestamps = log.column("timestamp")
        if duration_hours is None:
            duration_hours = max(
                float(timestamps.max()) if timestamps.size else 0.0,
                float(questions.column("created_at").max())
                if len(questions)
                else 0.0,
            )
        return FrozenState(
            question_info=ColumnQuestionInfo(
                questions.column("thread_id"),
                questions.column("votes"),
                questions.column("word_chars"),
                questions.column("code_chars"),
                questions.column("topics"),
            ),
            histories={u: summaries[u].history for u in users_sorted},
            questions_asked=dict(
                zip((int(u) for u in uniq.tolist()), counts.tolist())
            ),
            global_median_response=float(np.median(response_times))
            if response_times.size
            else 1.0,
            discussed_sum={},
            discussed_count={},
            discussed_by_thread={},
            thread_sets={},
            qa_graph=EdgeMultiset(qa_links).graph(),
            dense_graph=EdgeMultiset(dense_links).graph(),
            qa_closeness={},
            qa_betweenness={},
            dense_closeness={},
            dense_betweenness={},
            batch_tables=tables,
            duration_hours=float(duration_hours),
            n_threads=len(questions),
            fingerprint=f"columnar:{len(questions)}q:{len(log)}a",
        )
