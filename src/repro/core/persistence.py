"""Persistence for trained predictors.

``save_predictor`` stores everything learned — the three task models'
weights, the scalers, the topic model and the configuration — in a
single ``.npz`` archive.  ``load_predictor`` restores the predictor
*without retraining*; it only needs the feature-window dataset back
(datasets have their own serialization in :mod:`repro.forum.io`), from
which the feature extractor's aggregates and graphs are rebuilt
deterministically.

Format v2 additionally snapshots a fingerprint of the feature window
(thread count plus a digest of the (thread_id, created_at) pairs, see
:func:`repro.forum.dataset.fingerprint_threads`); loading verifies the
supplied window against it, so a predictor can no longer be silently
rebuilt over the wrong threads.  Version-1 archives predate the
fingerprint and still load, without the check.

Writes are crash-consistent: archives land in a temporary file and are
moved into place with ``os.replace``, so a crash mid-save never leaves
a torn archive at the target path.  :func:`write_checkpoint` layers
rotation on top — the previous checkpoint is kept at ``<name>.prev.npz``
and each archive gets a content-digest manifest — and
:func:`load_checkpoint` verifies the digest before deserializing,
falling back to the previous snapshot when the current one is torn or
tampered rather than raising mid-serve.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..ml.network import MLP
from ..ml.scaler import StandardScaler
from ..topics.lda import LdaVariational
from ..topics.vocabulary import Vocabulary
from .features import FeatureExtractor
from .pipeline import ForumPredictor, PredictorConfig
from .topic_context import TopicModelContext

__all__ = [
    "save_predictor",
    "load_predictor",
    "WindowMismatchError",
    "CheckpointCorruptError",
    "CheckpointLoadResult",
    "write_checkpoint",
    "load_checkpoint",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class WindowMismatchError(ValueError):
    """The dataset supplied at load time is not the saved feature window."""


class CheckpointCorruptError(ValueError):
    """Neither the current nor the previous checkpoint could be loaded."""


def _mlp_arrays(prefix: str, net: MLP, meta: dict, arrays: dict) -> None:
    layer_meta = []
    for i, layer in enumerate(net.layers):
        arrays[f"{prefix}_w{i}"] = layer.weight
        arrays[f"{prefix}_b{i}"] = layer.bias
        layer_meta.append(
            {
                "in_dim": layer.in_dim,
                "out_dim": layer.out_dim,
                "activation": layer.activation.name,
            }
        )
    meta[prefix] = {"layers": layer_meta, "l2": net.l2}


def _mlp_from_arrays(prefix: str, meta: dict, arrays) -> MLP:
    layer_meta = meta[prefix]["layers"]
    sizes = [layer_meta[0]["in_dim"]] + [lm["out_dim"] for lm in layer_meta]
    hidden_act = layer_meta[0]["activation"] if len(layer_meta) > 1 else "identity"
    output_act = layer_meta[-1]["activation"]
    net = MLP(
        sizes,
        hidden_activation=hidden_act,
        output_activation=output_act,
        l2=meta[prefix]["l2"],
    )
    for i, layer in enumerate(net.layers):
        layer.weight = arrays[f"{prefix}_w{i}"]
        layer.bias = arrays[f"{prefix}_b{i}"]
    return net


def _scaler_arrays(prefix: str, scaler: StandardScaler, meta: dict, arrays: dict):
    arrays[f"{prefix}_mean"] = scaler.mean_
    arrays[f"{prefix}_scale"] = scaler.scale_
    meta[prefix] = {"clip": scaler.clip}


def _scaler_from_arrays(prefix: str, meta: dict, arrays) -> StandardScaler:
    scaler = StandardScaler(clip=meta[prefix]["clip"])
    scaler.mean_ = arrays[f"{prefix}_mean"]
    scaler.scale_ = arrays[f"{prefix}_scale"]
    return scaler


def save_predictor(predictor: ForumPredictor, path: str | Path) -> None:
    """Persist a fitted predictor to a ``.npz`` archive (format v2)."""
    if predictor.extractor is None:
        raise ValueError("predictor is not fitted")
    topics = predictor.topics
    if not isinstance(topics.model, LdaVariational):
        raise ValueError(
            "only variational-LDA predictors can be persisted (the default)"
        )
    lda_meta, lda_lambda = topics.model.to_state()
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "version": _FORMAT_VERSION,
        "config": {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in predictor.config.__dict__.items()
        },
        "window": {
            "n_threads": len(predictor.extractor.window),
            "fingerprint": predictor.extractor.window_fingerprint,
        },
        "horizon_reference": predictor._horizon_reference,
        "max_train_time": predictor.timing_model._max_train_time,
        "timing_predictor": predictor.timing_model.predictor,
        "omega": predictor.timing_model.process.omega,
        "vocabulary": topics.vocabulary.to_state(),
        "lda": lda_meta,
        "answer_intercept": predictor.answer_model.classifier.intercept_,
        "answer_l2": predictor.answer_model.classifier.l2,
    }
    arrays["lda_lambda"] = lda_lambda
    # The per-post topic cache is model state, not derived state: the
    # training posterior comes from warm-started E-steps whose history a
    # cold ``transform`` at load time cannot replay, so the distributions
    # are stored rather than re-inferred.
    if topics._post_topics:
        post_ids = sorted(topics._post_topics)
        arrays["post_topic_ids"] = np.asarray(post_ids, dtype=np.int64)
        arrays["post_topic_dists"] = np.stack(
            [topics._post_topics[pid] for pid in post_ids]
        )
    arrays["answer_coef"] = predictor.answer_model.classifier.coef_
    _scaler_arrays("answer_scaler", predictor.answer_model.scaler, meta, arrays)
    _scaler_arrays("vote_scaler", predictor.vote_model.scaler, meta, arrays)
    _scaler_arrays("timing_scaler", predictor.timing_model.scaler, meta, arrays)
    _mlp_arrays("vote_net", predictor.vote_model.network, meta, arrays)
    _mlp_arrays(
        "excitation_net", predictor.timing_model.process.excitation_net, meta, arrays
    )
    if predictor.timing_model.process.decay_net is not None:
        _mlp_arrays(
            "decay_net", predictor.timing_model.process.decay_net, meta, arrays
        )
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path = _npz_path(path)
    # Write-temp + rename: np.savez appends ".npz" unless the name
    # already carries it, so the temporary name must end in ".npz" for
    # the replace to target the file actually written.
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)


def _npz_path(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _digest(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _prev_path(path: Path) -> Path:
    return path.with_name(path.stem + ".prev.npz")


def _manifest_path(path: Path) -> Path:
    return path.with_name(path.stem + ".manifest.json")


def _write_json_atomic(payload: dict, path: Path) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)


def write_checkpoint(predictor: ForumPredictor, path: str | Path) -> Path:
    """Save a rotating, digest-verified checkpoint of ``predictor``.

    The archive is written to a temporary file first, the previously
    current checkpoint (and its manifest) rotate to ``<name>.prev.*``,
    and only then does the new archive move into place — at every
    instant the path set contains at least one complete archive, so a
    crash at any step leaves :func:`load_checkpoint` something to serve.
    Returns the final archive path.
    """
    path = _npz_path(path)
    tmp = path.with_name(path.name + ".rotate.tmp.npz")
    save_predictor(predictor, tmp)
    manifest = {
        "digest": _digest(tmp),
        "size": tmp.stat().st_size,
        "format_version": _FORMAT_VERSION,
    }
    if path.exists():
        prev_manifest = _manifest_path(path)
        if prev_manifest.exists():
            os.replace(prev_manifest, _manifest_path(_prev_path(path)))
        os.replace(path, _prev_path(path))
    os.replace(tmp, path)
    _write_json_atomic(manifest, _manifest_path(path))
    perf.incr("resilience.checkpoints_written")
    return path


@dataclass(frozen=True)
class CheckpointLoadResult:
    """What :func:`load_checkpoint` served, and how degraded it is."""

    predictor: ForumPredictor
    fallback_used: bool = False
    diagnostic: str = ""


def _verify_manifest(path: Path) -> None:
    manifest_path = _manifest_path(path)
    if not manifest_path.exists():
        return  # archives written by bare save_predictor have none
    manifest = json.loads(manifest_path.read_text())
    if path.stat().st_size != manifest["size"]:
        raise CheckpointCorruptError(
            f"{path.name}: size {path.stat().st_size} != manifest "
            f"{manifest['size']} (torn write?)"
        )
    if _digest(path) != manifest["digest"]:
        raise CheckpointCorruptError(
            f"{path.name}: content digest does not match its manifest"
        )


def load_checkpoint(
    path: str | Path, feature_window: ForumDataset
) -> CheckpointLoadResult:
    """Load a checkpoint, falling back to the previous one if torn.

    The current archive is digest-verified against its manifest and
    deserialized; on any corruption (truncated file, digest mismatch,
    unreadable archive) the previous rotation is tried with the same
    checks.  A :class:`WindowMismatchError` is re-raised as-is — a
    wrong ``feature_window`` is a caller error, not disk corruption —
    and :class:`CheckpointCorruptError` is raised only when both
    generations fail.
    """
    path = _npz_path(path)
    failures: list[str] = []
    for candidate, is_fallback in ((path, False), (_prev_path(path), True)):
        if not candidate.exists():
            failures.append(f"{candidate.name}: missing")
            continue
        try:
            _verify_manifest(candidate)
            predictor = load_predictor(candidate, feature_window)
        except WindowMismatchError:
            raise
        except Exception as exc:  # noqa: BLE001 — collect and fall back
            failures.append(f"{candidate.name}: {type(exc).__name__}: {exc}")
            continue
        diagnostic = ""
        if is_fallback:
            perf.incr("resilience.checkpoint_fallbacks")
            diagnostic = (
                "current checkpoint unusable, served previous snapshot "
                f"({'; '.join(failures)})"
            )
        return CheckpointLoadResult(predictor, is_fallback, diagnostic)
    raise CheckpointCorruptError(
        "no loadable checkpoint generation: " + "; ".join(failures)
    )


def _check_window(meta: dict, feature_window: ForumDataset) -> None:
    """Format-v2 guard: the supplied window must be the one saved."""
    saved = meta.get("window")
    if saved is None:
        return  # v1 archive: no fingerprint was recorded
    if len(feature_window) != saved["n_threads"]:
        raise WindowMismatchError(
            f"feature window has {len(feature_window)} threads but the "
            f"predictor was saved over {saved['n_threads']}; pass the "
            "exact dataset the predictor was fitted on"
        )
    fingerprint = feature_window.fingerprint()
    if fingerprint != saved["fingerprint"]:
        raise WindowMismatchError(
            "feature window fingerprint mismatch: the supplied dataset "
            "holds different (thread_id, created_at) pairs than the one "
            "the predictor was saved over"
        )


def _topics_from_meta(meta: dict, arrays) -> TopicModelContext:
    """Restore the topic context from either archive format."""
    if meta["version"] >= 2:
        vocabulary = Vocabulary.from_state(meta["vocabulary"])
        lda = LdaVariational.from_state(meta["lda"], arrays["lda_lambda"])
    else:
        # v1 stored the bare token list and a minimal LDA header.
        vocabulary = Vocabulary.from_state({"tokens": meta["vocabulary"]})
        lda_meta = dict(meta["lda"])
        lda_meta.setdefault("vocab_size", len(vocabulary))
        lda = LdaVariational.from_state(lda_meta, arrays["lda_lambda"])
    post_topics: dict[int, np.ndarray] = {}
    if "post_topic_ids" in arrays:
        post_topics = {
            int(pid): dist
            for pid, dist in zip(
                arrays["post_topic_ids"], arrays["post_topic_dists"]
            )
        }
    return TopicModelContext(vocabulary, lda, post_topics=post_topics)


def load_predictor(
    path: str | Path, feature_window: ForumDataset
) -> ForumPredictor:
    """Restore a predictor saved by :func:`save_predictor`.

    ``feature_window`` must be the same dataset the predictor was fitted
    on (feature aggregates and graphs are rebuilt from it; the learned
    weights and topic model come from the archive).  Format-v2 archives
    carry the window's fingerprint and raise :class:`WindowMismatchError`
    when the supplied dataset does not match.
    """
    with np.load(Path(path)) as archive:
        arrays = {k: archive[k] for k in archive.files}
    meta = json.loads(bytes(arrays.pop("__meta__")).decode("utf-8"))
    if meta["version"] not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported predictor format version {meta['version']}")
    _check_window(meta, feature_window)
    config_dict = dict(meta["config"])
    for key in ("vote_hidden", "excitation_hidden"):
        config_dict[key] = tuple(config_dict[key])
    config = PredictorConfig(**config_dict)
    predictor = ForumPredictor(config)

    predictor.topics = _topics_from_meta(meta, arrays)
    predictor.extractor = FeatureExtractor(
        feature_window,
        predictor.topics,
        betweenness_sample_size=config.betweenness_sample_size,
        seed=config.seed,
    )
    predictor._horizon_reference = float(meta["horizon_reference"])

    # Answer model.
    from .answer_model import AnswerModel

    answer = AnswerModel(l2=meta["answer_l2"])
    answer.scaler = _scaler_from_arrays("answer_scaler", meta, arrays)
    answer.classifier.coef_ = arrays["answer_coef"]
    answer.classifier.intercept_ = float(meta["answer_intercept"])
    predictor.answer_model = answer

    # Vote model.
    from .vote_model import VoteModel

    vote = VoteModel(arrays["vote_net_w0"].shape[0], hidden=config.vote_hidden)
    vote.scaler = _scaler_from_arrays("vote_scaler", meta, arrays)
    vote.network = _mlp_from_arrays("vote_net", meta, arrays)
    vote._fitted = True
    predictor.vote_model = vote

    # Timing model.
    from .timing_model import TimingModel

    timing = TimingModel(
        arrays["excitation_net_w0"].shape[0],
        excitation_hidden=config.excitation_hidden,
        decay=config.decay,
        omega=float(meta["omega"]),
        predictor=meta["timing_predictor"],
    )
    timing.scaler = _scaler_from_arrays("timing_scaler", meta, arrays)
    timing.process.excitation_net = _mlp_from_arrays(
        "excitation_net", meta, arrays
    )
    if "decay_net_w0" in arrays:
        timing.process.decay_net = _mlp_from_arrays("decay_net", meta, arrays)
    else:
        timing.process.decay_net = None
    timing._max_train_time = float(meta["max_train_time"])
    timing._fitted = True
    predictor.timing_model = timing
    return predictor
