"""Named shared-memory publication of numpy array sets.

The sharded serving path publishes refit state once per epoch into
named ``multiprocessing.shared_memory`` blocks that persistent shard
workers map zero-copy, instead of re-pickling numpy tables through the
process-pool pipe on every scatter.  This module is the transport
primitive: pack a ``{key: ndarray}`` dict into one block and hand out a
picklable :class:`ShmManifest` that any process can :func:`attach` to
rebuild the arrays as views.

Lifetime contract: exactly one process — the publisher — owns each
block and eventually unlinks it; attachers only ever ``close()`` their
mapping.  Python 3.11's ``SharedMemory`` registers *every* open (create
and attach alike) with the ``resource_tracker``; with the fork-started
worker pools used here all processes share the parent's tracker, whose
name cache is a *set*, so create + N attaches collapse to one entry
that the publisher's :func:`unlink` retires — no extra bookkeeping
needed, and the tracker doubles as a safety net that reclaims blocks
if the whole process tree dies without cleanup.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from .. import perf

__all__ = [
    "SHM_PREFIX",
    "ShmManifest",
    "publish",
    "attach",
    "unlink",
    "active_shm_names",
]

# Every block name starts with this, so leak checks (and emergency
# cleanup) can recognise ours under /dev/shm.
SHM_PREFIX = "repro-shm"

# Per-entry alignment inside a block: cache-line aligned offsets keep
# every mapped array safely aligned for its dtype.
_ALIGN = 64

# Per-process sequence number; combined with the pid it makes block
# names unique even across rapid republications of the same epoch.
_seq = 0


def _next_name(tag: str) -> str:
    global _seq
    _seq += 1
    return f"{SHM_PREFIX}-{os.getpid()}-{_seq}-{tag}"


@dataclass(frozen=True)
class ShmManifest:
    """Picklable directory of the arrays packed into one named block.

    ``entries`` maps array key to ``(dtype_str, shape, byte_offset)``;
    the manifest is all a worker needs (a few hundred bytes down the
    pipe) to map every array zero-copy.
    """

    name: str
    total_bytes: int
    entries: dict[str, tuple[str, tuple[int, ...], int]]

    @property
    def keys(self) -> list[str]:
        return list(self.entries)


def publish(
    arrays: dict[str, np.ndarray], tag: str
) -> tuple[shared_memory.SharedMemory, ShmManifest]:
    """Pack ``arrays`` into one fresh named block; caller owns the handle.

    The returned ``SharedMemory`` must stay referenced until the block
    is retired with :func:`unlink`; the manifest may be pickled to any
    number of attaching processes.
    """
    entries: dict[str, tuple[str, tuple[int, ...], int]] = {}
    offset = 0
    packed: dict[str, np.ndarray] = {}
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        packed[key] = arr
        entries[key] = (arr.dtype.str, arr.shape, offset)
        offset += arr.nbytes
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
    total = max(offset, 1)  # zero-size blocks are not allowed
    shm = shared_memory.SharedMemory(
        name=_next_name(tag), create=True, size=total
    )
    for key, arr in packed.items():
        _, shape, off = entries[key]
        view = np.ndarray(shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
        view[...] = arr
        del view
    perf.incr("shm.blocks_published")
    perf.incr("shm.bytes_published", total)
    return shm, ShmManifest(shm.name, total, entries)


def attach(
    manifest: ShmManifest,
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Map a published block and rebuild its arrays as zero-copy views.

    The caller must keep the returned handle alive as long as any view
    is in use, then drop the views and ``close()`` it — never
    ``unlink()``; the publisher owns the block.
    """
    shm = shared_memory.SharedMemory(name=manifest.name)
    views = {
        key: np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=off
        )
        for key, (dtype_str, shape, off) in manifest.entries.items()
    }
    perf.incr("shm.blocks_attached")
    perf.incr("shm.bytes_mapped", manifest.total_bytes)
    return shm, views


def unlink(shm: shared_memory.SharedMemory) -> None:
    """Retire a block the calling process published (idempotent)."""
    try:
        shm.close()
    except BufferError:
        # Views still alive in this process; the mapping stays until
        # they are collected, but the name must still be retired.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def active_shm_names() -> list[str]:
    """Names of live blocks published by this library (Linux tmpfs).

    Empty on platforms without ``/dev/shm``; tests use this to assert
    that serving runs leave nothing behind.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{SHM_PREFIX}-*"))
