"""Batch question routing under shared user capacity.

Sec. V routes at fixed time indices; all questions arriving in one
interval compete for the same answerer capacity.  The joint problem is
a transportation LP:

    maximize   sum_q sum_u s_qu * p_qu
    subject to sum_u p_qu = 1                 for every question q
               sum_q p_qu <= c_u              for every user u
               p_qu >= 0, p_qu = 0 when u not eligible for q

solved exactly with ``scipy.optimize.linprog`` (HiGHS).  A greedy
fallback (questions routed one at a time, capacity decremented) is
provided for comparison — the LP's advantage over greedy is exactly the
value of coordinating the batch.

When the router carries a two-stage
:class:`~repro.core.retrieval.CandidateRetriever`, the shared candidate
axis shrinks to the union of the per-question retrieval pools before
the score matrix is built — the LP cost is quadratic in that axis, so
the pool bound pays off twice.  An infeasible pooled batch retries
against the full candidate set when the config's ``dense_fallback``
is set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from .. import perf
from ..forum.models import Thread
from .routing import QuestionRouter, solve_routing_lp

__all__ = ["BatchAssignment", "route_batch", "route_batch_greedy"]


@dataclass(frozen=True)
class BatchAssignment:
    """Joint routing of one batch of questions."""

    question_ids: tuple[int, ...]
    users: tuple[int, ...]  # the shared candidate axis
    probabilities: np.ndarray  # (n_questions, n_users), rows sum to 1
    objective: float  # total expected score

    def distribution_for(self, question_id: int) -> dict[int, float]:
        """Non-zero routing probabilities of one question."""
        q = self.question_ids.index(question_id)
        row = self.probabilities[q]
        return {
            int(self.users[u]): float(row[u])
            for u in np.flatnonzero(row > 1e-12)
        }


def _score_matrix(
    router: QuestionRouter,
    threads: list[Thread],
    candidates: list[int],
    tradeoff: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(scores, eligibility) over questions x candidates."""
    n_q, n_u = len(threads), len(candidates)
    scores = np.full((n_q, n_u), -np.inf)
    eligible = np.zeros((n_q, n_u), dtype=bool)
    for qi, thread in enumerate(threads):
        preds = router.predictor.predict_batch(
            [(u, thread) for u in candidates]
        )
        ok = (preds["answer"] >= router.epsilon) & (
            np.array(candidates) != thread.asker
        )
        eligible[qi] = ok
        scores[qi, ok] = (
            preds["votes"][ok] - tradeoff * preds["response_time"][ok]
        )
    return scores, eligible


def _pooled_axis(
    router: QuestionRouter, threads: list[Thread], candidates: list[int]
) -> list[int]:
    """Union of the per-question retrieval pools, ascending user ids."""
    union: np.ndarray | None = None
    for thread in threads:
        pool = router.candidate_pool(thread, candidates)
        union = pool if union is None else np.union1d(union, pool)
    return [int(u) for u in union] if union is not None else []


def _two_stage(router: QuestionRouter) -> bool:
    return (
        router.retriever is not None
        and router.retriever.config.mode == "two_stage"
    )


def route_batch(
    router: QuestionRouter,
    threads: list[Thread],
    candidates: list[int],
    *,
    tradeoff: float = 0.1,
    capacities: dict[int, float] | None = None,
) -> BatchAssignment | None:
    """Exact joint routing of a batch via the transportation LP.

    Returns ``None`` when the joint problem is infeasible (some question
    has no eligible user, or total capacity cannot cover the batch).
    """
    if not threads or not candidates:
        raise ValueError("need non-empty threads and candidates")
    if _two_stage(router):
        pooled = _pooled_axis(router, threads, candidates)
        result = (
            _route_batch_dense(
                router, threads, pooled, tradeoff, capacities
            )
            if pooled
            else None
        )
        if result is not None or not router.retriever.config.dense_fallback:
            return result
        if len(pooled) == len(candidates):
            return None
        perf.incr("retrieval.dense_fallbacks")
    return _route_batch_dense(router, threads, candidates, tradeoff, capacities)


def _route_batch_dense(
    router: QuestionRouter,
    threads: list[Thread],
    candidates: list[int],
    tradeoff: float,
    capacities: dict[int, float] | None,
) -> BatchAssignment | None:
    capacities = capacities or {}
    caps = np.array(
        [capacities.get(int(u), router.default_capacity) for u in candidates]
    )
    scores, eligible = _score_matrix(router, threads, candidates, tradeoff)
    if not eligible.any(axis=1).all():
        return None
    n_q, n_u = scores.shape
    # Variables: p_qu flattened row-major; ineligible cells pinned to 0.
    c = np.where(eligible, -scores, 0.0).ravel()  # linprog minimizes
    bounds = [
        (0.0, 1.0 if eligible[q, u] else 0.0)
        for q in range(n_q)
        for u in range(n_u)
    ]
    a_eq = np.zeros((n_q, n_q * n_u))
    for q in range(n_q):
        a_eq[q, q * n_u : (q + 1) * n_u] = 1.0
    a_ub = np.zeros((n_u, n_q * n_u))
    for u in range(n_u):
        a_ub[u, u::n_u] = 1.0
    result = linprog(
        c,
        A_eq=a_eq,
        b_eq=np.ones(n_q),
        A_ub=a_ub,
        b_ub=caps,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    probabilities = result.x.reshape(n_q, n_u)
    objective = float(np.sum(np.where(eligible, scores, 0.0) * probabilities))
    return BatchAssignment(
        question_ids=tuple(t.thread_id for t in threads),
        users=tuple(int(u) for u in candidates),
        probabilities=probabilities,
        objective=objective,
    )


def route_batch_greedy(
    router: QuestionRouter,
    threads: list[Thread],
    candidates: list[int],
    *,
    tradeoff: float = 0.1,
    capacities: dict[int, float] | None = None,
) -> BatchAssignment | None:
    """Myopic baseline: route questions one at a time, spending capacity.

    Each question solves its own single-question LP against the
    *remaining* capacity; earlier questions can starve later ones, which
    is exactly the coordination gap ``route_batch`` closes.
    """
    if not threads or not candidates:
        raise ValueError("need non-empty threads and candidates")
    if _two_stage(router):
        pooled = _pooled_axis(router, threads, candidates)
        result = (
            _route_batch_greedy_dense(
                router, threads, pooled, tradeoff, capacities
            )
            if pooled
            else None
        )
        if result is not None or not router.retriever.config.dense_fallback:
            return result
        if len(pooled) == len(candidates):
            return None
        perf.incr("retrieval.dense_fallbacks")
    return _route_batch_greedy_dense(
        router, threads, candidates, tradeoff, capacities
    )


def _route_batch_greedy_dense(
    router: QuestionRouter,
    threads: list[Thread],
    candidates: list[int],
    tradeoff: float,
    capacities: dict[int, float] | None,
) -> BatchAssignment | None:
    capacities = capacities or {}
    remaining = {
        int(u): capacities.get(int(u), router.default_capacity)
        for u in candidates
    }
    scores, eligible = _score_matrix(router, threads, candidates, tradeoff)
    n_q, n_u = scores.shape
    probabilities = np.zeros((n_q, n_u))
    objective = 0.0
    for q in range(n_q):
        ok = eligible[q]
        caps_q = np.array(
            [remaining[int(u)] if ok[i] else 0.0 for i, u in enumerate(candidates)]
        )
        if caps_q.sum() < 1.0 - 1e-12:
            return None
        p = solve_routing_lp(np.where(ok, scores[q], -np.inf), caps_q)
        probabilities[q] = p
        objective += float(np.sum(np.where(ok, scores[q], 0.0) * p))
        for i, u in enumerate(candidates):
            remaining[int(u)] -= p[i]
    return BatchAssignment(
        question_ids=tuple(t.thread_id for t in threads),
        users=tuple(int(u) for u in candidates),
        probabilities=probabilities,
        objective=objective,
    )
