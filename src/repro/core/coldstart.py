"""Cold-start analysis: prediction quality by user history depth.

Fig. 7 varies how much *global* history the features see; this analysis
slices the other way — per-user: how do the three predictors fare on
answerers with zero, thin, or deep personal history inside the feature
window?  Identity-based baselines collapse at zero history; the
feature-based models degrade gracefully through question and social
features, which is the practical argument for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.metrics import auc_score, rmse
from .evaluation import PairDataset
from .featurespec import FeatureSpec

__all__ = ["ColdStartBucket", "cold_start_report"]


@dataclass(frozen=True)
class ColdStartBucket:
    """Metrics over pairs whose user history falls in one band."""

    label: str
    n_pairs: int
    n_positive: int
    answer_auc: float  # nan when a class is missing
    vote_rmse: float  # nan when no positives
    timing_rmse: float


def _history_counts(pairs: PairDataset, spec: FeatureSpec) -> np.ndarray:
    """The a_u feature (answers provided, target-thread excluded)."""
    col = spec.columns_of("answers_provided")[0]
    return pairs.x[:, col]


def cold_start_report(
    pairs: PairDataset,
    spec: FeatureSpec,
    answer_scores: np.ndarray,
    vote_predictions: np.ndarray,
    timing_predictions: np.ndarray,
    *,
    bands: tuple[tuple[str, float, float], ...] = (
        ("cold (0)", 0.0, 0.5),
        ("thin (1-2)", 0.5, 2.5),
        ("warm (3+)", 2.5, np.inf),
    ),
) -> list[ColdStartBucket]:
    """Split test pairs by user history depth and score each band.

    ``answer_scores``/``vote_predictions``/``timing_predictions`` are
    the model outputs for every row of ``pairs`` (vote and timing
    entries are only consulted on positive rows).
    """
    n = pairs.n_pairs
    for name, arr in (
        ("answer_scores", answer_scores),
        ("vote_predictions", vote_predictions),
        ("timing_predictions", timing_predictions),
    ):
        if len(arr) != n:
            raise ValueError(f"{name} must have one entry per pair")
    history = _history_counts(pairs, spec)
    buckets = []
    for label, low, high in bands:
        mask = (history >= low) & (history < high)
        idx = np.flatnonzero(mask)
        pos = idx[pairs.is_event[idx] == 1.0]
        labels = pairs.is_event[idx]
        if idx.size and 0 < labels.sum() < len(labels):
            auc = auc_score(labels, np.asarray(answer_scores)[idx])
        else:
            auc = float("nan")
        if pos.size:
            vote = rmse(pairs.votes[pos], np.asarray(vote_predictions)[pos])
            timing = rmse(
                pairs.times[pos], np.asarray(timing_predictions)[pos]
            )
        else:
            vote = float("nan")
            timing = float("nan")
        buckets.append(
            ColdStartBucket(
                label=label,
                n_pairs=int(idx.size),
                n_positive=int(pos.size),
                answer_auc=float(auc),
                vote_rmse=float(vote),
                timing_rmse=float(timing),
            )
        )
    return buckets
