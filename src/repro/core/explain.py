"""Per-prediction explanations.

The paper's conclusion: "the learnt features can provide analytics to
forum administrators too."  This module turns each prediction into a
feature-attribution breakdown:

* the answer model is linear in standardized features, so attribution
  is exact: contribution = coefficient x z-score;
* the vote and timing networks are explained by single-feature
  perturbation — each feature is reset to its training mean and the
  prediction delta recorded (a leave-one-feature-at-mean sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..forum.models import Thread
from .pipeline import ForumPredictor

__all__ = ["FeatureContribution", "PredictionExplanation", "explain_prediction"]


@dataclass(frozen=True)
class FeatureContribution:
    """One feature's contribution to one prediction."""

    feature: str
    value: float  # raw feature value
    contribution: float  # signed effect on the prediction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeatureContribution({self.feature}={self.value:.3g}, "
            f"{self.contribution:+.4f})"
        )


@dataclass(frozen=True)
class PredictionExplanation:
    """Attributions for all three tasks of one (user, question) pair."""

    user: int
    thread_id: int
    answer: list[FeatureContribution]
    votes: list[FeatureContribution]
    response_time: list[FeatureContribution]

    def top(self, task: str, n: int = 5) -> list[FeatureContribution]:
        """The ``n`` largest-magnitude contributions for a task."""
        contributions = getattr(self, task)
        return sorted(contributions, key=lambda c: -abs(c.contribution))[:n]


def _aggregate_columns(
    spec, per_column: np.ndarray, raw: np.ndarray
) -> list[FeatureContribution]:
    """Sum column-level contributions up to the 20 named features."""
    out = []
    for name in spec.feature_names:
        cols = spec.columns_of(name)
        out.append(
            FeatureContribution(
                feature=name,
                value=float(raw[cols].sum()) if len(cols) > 1 else float(raw[cols[0]]),
                contribution=float(per_column[cols].sum()),
            )
        )
    return out


def _perturbation_contributions(predict_fn, z: np.ndarray) -> np.ndarray:
    """Prediction delta when each standardized feature is zeroed (mean).

    ``predict_fn`` maps a standardized (1, d) matrix to a scalar array.
    """
    base = float(predict_fn(z)[0])
    deltas = np.zeros(z.shape[1])
    for j in range(z.shape[1]):
        perturbed = z.copy()
        perturbed[0, j] = 0.0  # the training mean in standardized space
        deltas[j] = base - float(predict_fn(perturbed)[0])
    return deltas


def explain_prediction(
    predictor: ForumPredictor, user: int, thread: Thread
) -> PredictionExplanation:
    """Feature attributions for one pair across all three tasks."""
    if predictor.extractor is None:
        raise RuntimeError("predictor is not fitted")
    x = predictor.extractor.features(user, thread)[None, :]
    spec = predictor.extractor.spec

    # Task (i): exact linear attribution on standardized features.
    answer_scaler = predictor.answer_model.scaler
    z_answer = answer_scaler.transform(x)
    answer_cols = predictor.answer_model.coefficients * z_answer[0]
    answer = _aggregate_columns(spec, answer_cols, x[0])

    # Task (ii): perturbation sensitivity through the vote network.
    vote_model = predictor.vote_model
    z_vote = vote_model.scaler.transform(x)
    vote_cols = _perturbation_contributions(
        lambda m: vote_model.network.predict(m), z_vote
    )
    votes = _aggregate_columns(spec, vote_cols, x[0])

    # Task (iii): perturbation sensitivity of the predicted time.
    timing = predictor.timing_model
    horizon = predictor._horizons([thread])

    def timing_predict(z_std: np.ndarray) -> np.ndarray:
        from ..pointprocess.exponential import conditional_expected_time

        mu, omega = timing.process.predict_parameters(z_std)
        if timing.predictor == "expected":
            return timing.process.predict_response_time(z_std, horizon)
        return conditional_expected_time(mu, omega, horizon)

    z_timing = timing.scaler.transform(x)
    timing_cols = _perturbation_contributions(timing_predict, z_timing)
    response_time = _aggregate_columns(spec, timing_cols, x[0])

    return PredictionExplanation(
        user=user,
        thread_id=thread.thread_id,
        answer=answer,
        votes=votes,
        response_time=response_time,
    )
