"""Experiment harness reproducing the paper's evaluation (Sec. IV).

Implements the cross-validation protocol of Sec. IV-A and drivers for:

* Table I   — model vs. baseline on all three tasks;
* Fig. 5    — sensitivity to the number of LDA topics K;
* Fig. 6    — leave-one-feature-out importance for the v and r tasks;
* Fig. 7    — leave-one-group-out importance vs. historical-data window.

Every driver accepts ``n_jobs`` (default serial; ``REPRO_N_JOBS`` in the
environment overrides the default): fold fits and the independent
ablation/sweep runs are embarrassingly parallel, so they dispatch
through a ``ProcessPoolExecutor``.  All randomness is derived from the
config seed per fold/run, never from shared RNG state, so parallel and
serial runs produce identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf

from ..baselines import MatrixFactorization, PoissonRegression, Sparfa
from ..forum.dataset import ForumDataset
from ..ml.crossval import stratified_kfold_indices
from ..ml.metrics import auc_score, rmse
from ..ml.scaler import StandardScaler
from .answer_model import AnswerModel
from .features import FeatureExtractor
from .parallel import parallel_map, resolve_n_jobs
from .pipeline import PredictorConfig
from .timing_model import TimingModel
from .topic_context import TopicModelContext
from .vote_model import VoteModel

__all__ = [
    "PairDataset",
    "MetricSummary",
    "TaskResult",
    "Table1Result",
    "build_pair_dataset",
    "build_extractor",
    "run_table1",
    "run_topic_sweep",
    "run_feature_importance",
    "run_group_importance_by_history",
]


# --------------------------------------------------------------------------
# Pair dataset construction
# --------------------------------------------------------------------------


@dataclass
class PairDataset:
    """All (user, question) pairs of one experiment with features attached.

    Rows are positives (answered pairs) followed by sampled negatives;
    ``is_event`` distinguishes them.
    """

    x: np.ndarray  # (n, d) feature matrix
    users: np.ndarray  # (n,) user ids
    thread_ids: np.ndarray  # (n,) question ids
    votes: np.ndarray  # (n,) answer votes (0 for negatives)
    times: np.ndarray  # (n,) response times (0 for negatives)
    horizons: np.ndarray  # (n,) observation windows T - t_q0
    is_event: np.ndarray  # (n,) 1.0 for answered pairs

    @property
    def n_pairs(self) -> int:
        return len(self.users)

    @property
    def positives(self) -> np.ndarray:
        return np.flatnonzero(self.is_event == 1.0)

    def keep_columns(self, mask: np.ndarray) -> "PairDataset":
        """A view with a feature-column subset (for ablations)."""
        return PairDataset(
            x=self.x[:, mask],
            users=self.users,
            thread_ids=self.thread_ids,
            votes=self.votes,
            times=self.times,
            horizons=self.horizons,
            is_event=self.is_event,
        )


def build_extractor(
    window: ForumDataset, config: PredictorConfig
) -> FeatureExtractor:
    """Topic model + feature extractor over a feature window F."""
    topics = TopicModelContext.fit(
        window,
        n_topics=config.n_topics,
        method=config.lda_method,
        min_count=config.lda_min_count,
        seed=config.seed,
    )
    return FeatureExtractor(
        window,
        topics,
        betweenness_sample_size=config.betweenness_sample_size,
        seed=config.seed,
    )


def build_pair_dataset(
    dataset: ForumDataset,
    extractor: FeatureExtractor,
    *,
    negative_ratio: float = 1.0,
    horizon_reference: float | None = None,
    seed: int = 0,
) -> PairDataset:
    """Positive pairs from ``dataset`` plus sampled negatives, featurized."""
    records = dataset.answer_records()
    if not records:
        raise ValueError("dataset has no answers")
    horizon_t = (
        horizon_reference if horizon_reference is not None else dataset.duration_hours
    )
    pos_pairs = [(r.user, dataset.thread(r.thread_id)) for r in records]
    n_neg = max(1, int(round(len(records) * negative_ratio)))
    neg_pairs = [
        (u, dataset.thread(tid))
        for u, tid in dataset.sample_negative_pairs(n_neg, seed=seed)
    ]
    all_pairs = pos_pairs + neg_pairs
    x = extractor.feature_matrix(all_pairs)
    horizons = np.maximum(
        horizon_t - np.array([t.created_at for _, t in all_pairs]), 1.0
    )
    return PairDataset(
        x=x,
        users=np.array([u for u, _ in all_pairs]),
        thread_ids=np.array([t.thread_id for _, t in all_pairs]),
        votes=np.r_[
            np.array([r.votes for r in records], dtype=float), np.zeros(n_neg)
        ],
        times=np.r_[
            np.array([r.response_time for r in records], dtype=float),
            np.zeros(n_neg),
        ],
        horizons=horizons,
        is_event=np.r_[np.ones(len(records)), np.zeros(n_neg)],
    )


# --------------------------------------------------------------------------
# Result containers
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricSummary:
    """Mean and standard deviation over CV iterations."""

    mean: float
    std: float

    @classmethod
    def of(cls, values: list[float]) -> "MetricSummary":
        arr = np.asarray(values, dtype=float)
        return cls(mean=float(arr.mean()), std=float(arr.std()))


@dataclass(frozen=True)
class TaskResult:
    """Model vs. baseline on one task; improvement as the paper reports it.

    ``model_values``/``baseline_values`` keep the per-fold metrics so
    significance can be assessed on identical folds.
    """

    model: MetricSummary
    baseline: MetricSummary
    higher_is_better: bool
    model_values: tuple[float, ...] = ()
    baseline_values: tuple[float, ...] = ()

    @property
    def improvement_percent(self) -> float:
        if self.higher_is_better:
            return 100.0 * (self.model.mean - self.baseline.mean) / self.baseline.mean
        return 100.0 * (self.baseline.mean - self.model.mean) / self.baseline.mean

    def significance(self):
        """Paired t-test of model vs. baseline over the CV folds."""
        from ..ml.significance import paired_t_test

        if len(self.model_values) < 2:
            raise ValueError("need per-fold values from at least 2 folds")
        return paired_t_test(self.model_values, self.baseline_values)

    def model_confidence_interval(self, confidence: float = 0.95):
        """Bootstrap CI of the model's mean metric over folds."""
        from ..ml.significance import bootstrap_ci

        return bootstrap_ci(np.array(self.model_values), confidence=confidence)


@dataclass(frozen=True)
class Table1Result:
    """The three rows of paper Table I."""

    answer: TaskResult  # AUC
    votes: TaskResult  # RMSE
    timing: TaskResult  # RMSE

    def as_rows(self) -> list[tuple[str, str, float, float, float]]:
        """(task, metric, baseline, model, improvement%) rows for printing."""
        return [
            (
                "a_uq",
                "AUC",
                self.answer.baseline.mean,
                self.answer.model.mean,
                self.answer.improvement_percent,
            ),
            (
                "v_uq",
                "RMSE",
                self.votes.baseline.mean,
                self.votes.model.mean,
                self.votes.improvement_percent,
            ),
            (
                "r_uq",
                "RMSE",
                self.timing.baseline.mean,
                self.timing.model.mean,
                self.timing.improvement_percent,
            ),
        ]


# --------------------------------------------------------------------------
# Parallel dispatch
# --------------------------------------------------------------------------


_resolve_n_jobs = resolve_n_jobs


def _parallel_map(fn, tasks: list, n_jobs: int | None) -> list:
    """:func:`repro.core.parallel.parallel_map` with perf merging on.

    Fold fits record pipeline stage timings; merging the worker
    registries keeps ``perf.report()`` identical to a serial run.
    """
    return parallel_map(fn, tasks, n_jobs, merge_perf=True)


# --------------------------------------------------------------------------
# Fold-level evaluation
# --------------------------------------------------------------------------


def _fold_iterator(pairs: PairDataset, n_folds: int, n_repeats: int, seed: int):
    """The paper's CV: stratified by user, repeated ``n_repeats`` times."""
    groups = pairs.users.tolist()
    for repeat in range(n_repeats):
        yield from stratified_kfold_indices(
            groups, n_folds, seed=seed + 1000 * repeat
        )


def _index_map(values: np.ndarray) -> dict[int, int]:
    return {v: i for i, v in enumerate(np.unique(values))}


def _evaluate_answer_fold(
    pairs: PairDataset, train: np.ndarray, test: np.ndarray, config: PredictorConfig
) -> tuple[float, float]:
    """(model AUC, SPARFA AUC) on one fold."""
    model = AnswerModel(l2=config.answer_l2).fit(
        pairs.x[train], pairs.is_event[train]
    )
    model_auc = auc_score(
        pairs.is_event[test], model.predict_proba(pairs.x[test])
    )
    users = _index_map(pairs.users)
    questions = _index_map(pairs.thread_ids)
    rows = np.array([users[u] for u in pairs.users])
    cols = np.array([questions[q] for q in pairs.thread_ids])
    sparfa = Sparfa(
        len(users), len(questions), n_factors=3, seed=config.seed, n_iter=300
    )
    sparfa.fit(rows[train], cols[train], pairs.is_event[train])
    baseline_auc = auc_score(
        pairs.is_event[test], sparfa.predict_proba(rows[test], cols[test])
    )
    return model_auc, baseline_auc


def _evaluate_votes_fold(
    pairs: PairDataset, train: np.ndarray, test: np.ndarray, config: PredictorConfig
) -> tuple[float, float]:
    """(model RMSE, MF RMSE) over the fold's positive pairs."""
    train_pos = train[pairs.is_event[train] == 1.0]
    test_pos = test[pairs.is_event[test] == 1.0]
    model = VoteModel(
        pairs.x.shape[1],
        hidden=config.vote_hidden,
        epochs=config.vote_epochs,
        seed=config.seed,
        fused=config.training_engine == "fused",
    )
    model.fit(pairs.x[train_pos], pairs.votes[train_pos])
    model_rmse = rmse(pairs.votes[test_pos], model.predict(pairs.x[test_pos]))
    users = _index_map(pairs.users)
    questions = _index_map(pairs.thread_ids)
    rows = np.array([users[u] for u in pairs.users])
    cols = np.array([questions[q] for q in pairs.thread_ids])
    mf = MatrixFactorization(
        len(users), len(questions), n_factors=5, seed=config.seed, n_iter=300
    )
    mf.fit(rows[train_pos], cols[train_pos], pairs.votes[train_pos])
    baseline_rmse = rmse(
        pairs.votes[test_pos], mf.predict(rows[test_pos], cols[test_pos])
    )
    return model_rmse, baseline_rmse


def _evaluate_timing_fold(
    pairs: PairDataset, train: np.ndarray, test: np.ndarray, config: PredictorConfig
) -> tuple[float, float]:
    """(model RMSE, Poisson-regression RMSE) over the fold's positives."""
    test_pos = test[pairs.is_event[test] == 1.0]
    model = TimingModel(
        pairs.x.shape[1],
        excitation_hidden=config.excitation_hidden,
        decay=config.decay,
        omega=config.omega,
        epochs=config.timing_epochs,
        seed=config.seed,
        fused=config.training_engine == "fused",
    )
    model.fit(
        pairs.x[train],
        pairs.times[train],
        pairs.horizons[train],
        pairs.is_event[train],
    )
    model_rmse = rmse(
        pairs.times[test_pos],
        model.predict(pairs.x[test_pos], pairs.horizons[test_pos]),
    )
    train_pos = train[pairs.is_event[train] == 1.0]
    # Standardize (with outlier clipping) for the GLM too, and cap its
    # predictions at the training range — exp-link extrapolation
    # otherwise explodes on rare out-of-range test points.
    scaler = StandardScaler(clip=8.0)
    z_train = scaler.fit_transform(pairs.x[train_pos])
    poisson = PoissonRegression(l2=1e-3)
    poisson.fit(z_train, np.ceil(pairs.times[train_pos]))
    cap = float(pairs.times[train_pos].max())
    preds = np.minimum(
        poisson.predict_mean(scaler.transform(pairs.x[test_pos])), cap
    )
    baseline_rmse = rmse(pairs.times[test_pos], preds)
    return model_rmse, baseline_rmse


# --------------------------------------------------------------------------
# Experiment drivers
# --------------------------------------------------------------------------


def _table1_fold_task(
    args: tuple[PairDataset, np.ndarray, np.ndarray, PredictorConfig],
) -> tuple[tuple[float, float], tuple[float, float], tuple[float, float]]:
    """All three task comparisons on one fold (top-level: picklable)."""
    pairs, train, test, config = args
    with perf.timer("evaluation.fold"):
        answer = _evaluate_answer_fold(pairs, train, test, config)
        votes = _evaluate_votes_fold(pairs, train, test, config)
        timing = _evaluate_timing_fold(pairs, train, test, config)
    return answer, votes, timing


def run_table1(
    dataset: ForumDataset,
    *,
    config: PredictorConfig | None = None,
    n_folds: int = 5,
    n_repeats: int = 1,
    extractor: FeatureExtractor | None = None,
    pairs: PairDataset | None = None,
    n_jobs: int | None = None,
) -> Table1Result:
    """Reproduce Table I: all three tasks with Omega = Q, F = Q.

    ``extractor``/``pairs`` may be passed in to reuse featurization
    across experiments (they are deterministic given the config).
    ``n_jobs > 1`` evaluates folds in parallel worker processes; the
    folds and every model seed derive from ``config.seed``, so the
    result is identical to the serial run.
    """
    config = config or PredictorConfig()
    if pairs is None:
        if extractor is None:
            extractor = build_extractor(dataset, config)
        pairs = build_pair_dataset(
            dataset,
            extractor,
            negative_ratio=config.negative_ratio,
            seed=config.seed,
        )
    folds = list(_fold_iterator(pairs, n_folds, n_repeats, config.seed))
    with perf.timer("evaluation.table1_cv"):
        per_fold = _parallel_map(
            _table1_fold_task,
            [(pairs, train, test, config) for train, test in folds],
            n_jobs,
        )
    metrics: dict[str, list[float]] = {
        "answer_model": [],
        "answer_base": [],
        "votes_model": [],
        "votes_base": [],
        "timing_model": [],
        "timing_base": [],
    }
    for answer, votes, timing in per_fold:
        metrics["answer_model"].append(answer[0])
        metrics["answer_base"].append(answer[1])
        metrics["votes_model"].append(votes[0])
        metrics["votes_base"].append(votes[1])
        metrics["timing_model"].append(timing[0])
        metrics["timing_base"].append(timing[1])
    return Table1Result(
        answer=TaskResult(
            MetricSummary.of(metrics["answer_model"]),
            MetricSummary.of(metrics["answer_base"]),
            higher_is_better=True,
            model_values=tuple(metrics["answer_model"]),
            baseline_values=tuple(metrics["answer_base"]),
        ),
        votes=TaskResult(
            MetricSummary.of(metrics["votes_model"]),
            MetricSummary.of(metrics["votes_base"]),
            higher_is_better=False,
            model_values=tuple(metrics["votes_model"]),
            baseline_values=tuple(metrics["votes_base"]),
        ),
        timing=TaskResult(
            MetricSummary.of(metrics["timing_model"]),
            MetricSummary.of(metrics["timing_base"]),
            higher_is_better=False,
            model_values=tuple(metrics["timing_model"]),
            baseline_values=tuple(metrics["timing_base"]),
        ),
    )


def _cv_fold_task(
    args: tuple[PairDataset, np.ndarray, np.ndarray, PredictorConfig, tuple[str, ...]],
) -> dict[str, float]:
    """Model-side metrics for the requested tasks on one fold."""
    pairs, train, test, config, tasks = args
    out: dict[str, float] = {}
    with perf.timer("evaluation.fold"):
        if "answer" in tasks:
            model = AnswerModel(l2=config.answer_l2).fit(
                pairs.x[train], pairs.is_event[train]
            )
            out["answer"] = auc_score(
                pairs.is_event[test], model.predict_proba(pairs.x[test])
            )
        if "votes" in tasks:
            train_pos = train[pairs.is_event[train] == 1.0]
            test_pos = test[pairs.is_event[test] == 1.0]
            vote = VoteModel(
                pairs.x.shape[1],
                hidden=config.vote_hidden,
                epochs=config.vote_epochs,
                seed=config.seed,
                fused=config.training_engine == "fused",
            )
            vote.fit(pairs.x[train_pos], pairs.votes[train_pos])
            out["votes"] = rmse(
                pairs.votes[test_pos], vote.predict(pairs.x[test_pos])
            )
        if "timing" in tasks:
            test_pos = test[pairs.is_event[test] == 1.0]
            timing = TimingModel(
                pairs.x.shape[1],
                excitation_hidden=config.excitation_hidden,
                decay=config.decay,
                omega=config.omega,
                epochs=config.timing_epochs,
                seed=config.seed,
                fused=config.training_engine == "fused",
            )
            timing.fit(
                pairs.x[train],
                pairs.times[train],
                pairs.horizons[train],
                pairs.is_event[train],
            )
            out["timing"] = rmse(
                pairs.times[test_pos],
                timing.predict(pairs.x[test_pos], pairs.horizons[test_pos]),
            )
    return out


def _cv_task_metrics(
    pairs: PairDataset,
    config: PredictorConfig,
    n_folds: int,
    n_repeats: int,
    tasks: tuple[str, ...] = ("answer", "votes", "timing"),
    n_jobs: int | None = None,
) -> dict[str, float]:
    """Mean model-side metrics over CV folds for the requested tasks."""
    folds = list(_fold_iterator(pairs, n_folds, n_repeats, config.seed))
    per_fold = _parallel_map(
        _cv_fold_task,
        [(pairs, train, test, config, tasks) for train, test in folds],
        n_jobs,
    )
    return {t: float(np.mean([fold[t] for fold in per_fold])) for t in tasks}


def _topic_sweep_task(
    args: tuple[ForumDataset, PredictorConfig, int, int],
) -> dict[str, float]:
    """One K of the Fig. 5 sweep: fit topics + features, run the CV."""
    dataset, cfg, n_folds, n_repeats = args
    extractor = build_extractor(dataset, cfg)
    pairs = build_pair_dataset(
        dataset, extractor, negative_ratio=cfg.negative_ratio, seed=cfg.seed
    )
    return _cv_task_metrics(pairs, cfg, n_folds, n_repeats)


def run_topic_sweep(
    dataset: ForumDataset,
    *,
    topic_counts: tuple[int, ...] = (2, 5, 8, 12, 15),
    base_topics: int = 8,
    config: PredictorConfig | None = None,
    n_folds: int = 5,
    n_repeats: int = 1,
    n_jobs: int | None = None,
) -> dict[int, dict[str, float]]:
    """Fig. 5: percent metric change vs. K, relative to the K=8 default.

    Returns ``{K: {task: percent_change}}`` where positive means better
    (higher AUC for the answer task, lower RMSE for the others).  The
    per-K runs are independent and dispatch in parallel for
    ``n_jobs > 1``.
    """
    config = config or PredictorConfig()
    results: dict[int, dict[str, float]] = {}
    counts = tuple(dict.fromkeys((base_topics, *topic_counts)))
    configs = [
        PredictorConfig(**{**config.__dict__, "n_topics": k}) for k in counts
    ]
    with perf.timer("evaluation.topic_sweep"):
        per_k = _parallel_map(
            _topic_sweep_task,
            [(dataset, cfg, n_folds, n_repeats) for cfg in configs],
            n_jobs,
        )
    raw = dict(zip(counts, per_k))
    base = raw[base_topics]
    for k in counts:
        if k == base_topics:
            continue
        results[k] = {
            "answer": 100.0 * (raw[k]["answer"] - base["answer"]) / base["answer"],
            "votes": 100.0 * (base["votes"] - raw[k]["votes"]) / base["votes"],
            "timing": 100.0 * (base["timing"] - raw[k]["timing"]) / base["timing"],
        }
    return results


def _ablation_task(
    args: tuple[PairDataset, PredictorConfig, int, int, tuple[str, ...]],
) -> dict[str, float]:
    """One ablation unit: serial CV over a column-subset dataset."""
    pairs, config, n_folds, n_repeats, tasks = args
    return _cv_task_metrics(pairs, config, n_folds, n_repeats, tasks=tasks)


def run_feature_importance(
    dataset: ForumDataset,
    *,
    config: PredictorConfig | None = None,
    n_folds: int = 5,
    n_repeats: int = 1,
    features: tuple[str, ...] | None = None,
    n_jobs: int | None = None,
) -> dict[str, dict[str, float]]:
    """Fig. 6: leave-one-feature-out percent RMSE increase for v and r.

    Returns ``{feature: {"votes": pct, "timing": pct}}`` where positive
    percent means removing the feature *hurt* (RMSE went up).  The base
    run and the per-feature ablations are independent and dispatch in
    parallel for ``n_jobs > 1``.
    """
    config = config or PredictorConfig()
    extractor = build_extractor(dataset, config)
    pairs = build_pair_dataset(
        dataset, extractor, negative_ratio=config.negative_ratio, seed=config.seed
    )
    spec = extractor.spec
    names = features if features is not None else tuple(spec.feature_names)
    tasks = ("votes", "timing")
    units = [pairs] + [
        pairs.keep_columns(spec.mask_without(features=(name,))) for name in names
    ]
    with perf.timer("evaluation.feature_importance"):
        metrics = _parallel_map(
            _ablation_task,
            [(unit, config, n_folds, n_repeats, tasks) for unit in units],
            n_jobs,
        )
    base, ablations = metrics[0], metrics[1:]
    out: dict[str, dict[str, float]] = {}
    for name, ablated in zip(names, ablations):
        out[name] = {
            "votes": 100.0 * (ablated["votes"] - base["votes"]) / base["votes"],
            "timing": 100.0 * (ablated["timing"] - base["timing"]) / base["timing"],
        }
    return out


def _history_window_task(
    args: tuple[
        ForumDataset, ForumDataset, float, PredictorConfig, int, int, tuple[str, ...]
    ],
) -> dict[str, dict[str, float]]:
    """One history length of Fig. 7: featurize + full and per-group CV."""
    window, eval_set, horizon_reference, config, n_folds, n_repeats, groups = args
    extractor = build_extractor(window, config)
    pairs = build_pair_dataset(
        eval_set,
        extractor,
        negative_ratio=config.negative_ratio,
        horizon_reference=horizon_reference,
        seed=config.seed,
    )
    spec = extractor.spec
    per_history: dict[str, dict[str, float]] = {}
    per_history["full"] = _cv_task_metrics(
        pairs, config, n_folds, n_repeats, tasks=("votes", "timing")
    )
    for group in groups:
        mask = spec.mask_without(groups=(group,))
        per_history[group] = _cv_task_metrics(
            pairs.keep_columns(mask),
            config,
            n_folds,
            n_repeats,
            tasks=("votes", "timing"),
        )
    return per_history


def run_group_importance_by_history(
    dataset: ForumDataset,
    *,
    config: PredictorConfig | None = None,
    eval_first_day: int = 25,
    eval_last_day: int = 30,
    history_lengths: tuple[int, ...] = (5, 10, 15, 20, 25),
    n_folds: int = 5,
    n_repeats: int = 1,
    n_jobs: int | None = None,
) -> dict[int, dict[str, dict[str, float]]]:
    """Fig. 7: leave-one-group-out RMSE vs. historical window length.

    Evaluation pairs come from the last days (the paper's D25..D30); for
    each history length ``i`` features are computed over days
    ``(25 - i)..25``.  Returns ``{i: {group_or_none: {"votes": rmse,
    "timing": rmse}}}`` with key ``"full"`` for the un-ablated model.
    The per-history runs are independent and dispatch in parallel for
    ``n_jobs > 1``.
    """
    config = config or PredictorConfig()
    eval_set = dataset.threads_in_days(eval_first_day, eval_last_day)
    if len(eval_set) == 0:
        raise ValueError("no threads in the evaluation window")
    groups = ("user", "question", "user_question", "social")
    windows: list[ForumDataset] = []
    for history in history_lengths:
        first = max(1, eval_first_day - history)
        window = dataset.threads_in_days(first, eval_first_day)
        if len(window) == 0:
            raise ValueError(f"no threads in history window {first}..{eval_first_day}")
        windows.append(window)
    with perf.timer("evaluation.group_importance"):
        per_window = _parallel_map(
            _history_window_task,
            [
                (
                    window,
                    eval_set,
                    dataset.duration_hours,
                    config,
                    n_folds,
                    n_repeats,
                    groups,
                )
                for window in windows
            ],
            n_jobs,
        )
    return dict(zip(history_lengths, per_window))
