"""Trainable point process with neural-network parameterized rates.

The paper models the initial excitation as ``mu_uq = f_Theta(x_uq)`` and
the decay as either a second network ``omega_uq = g_Theta(x_uq)`` or a
constant (its final configuration uses a constant, Sec. IV-A).  Training
maximizes the point-process log likelihood by gradient descent through
the feature networks.

One deliberate deviation: the paper's excitation network uses a ReLU
output, which can emit exactly zero and kill both ``log(mu)`` and the
gradient.  We use softplus, which matches ReLU asymptotically but stays
strictly positive (recorded in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.network import MLP
from ..ml.optimizers import Optimizer, get_optimizer
from .exponential import expected_response_time

__all__ = ["ExcitationPointProcess", "PointProcessFitResult"]

_MU_FLOOR = 1e-8
_OMEGA_FLOOR = 1e-6


@dataclass
class PointProcessFitResult:
    """Negative-log-likelihood history from training."""

    nll_history: list[float] = field(default_factory=list)
    validation_history: list[float] = field(default_factory=list)

    @property
    def final_nll(self) -> float:
        return self.nll_history[-1] if self.nll_history else float("nan")


class ExcitationPointProcess:
    """Point process over (user, question) pairs with feature-driven rates.

    Parameters
    ----------
    n_features:
        Dimension of the feature vector ``x_uq``.
    excitation_hidden:
        Hidden layer sizes of ``f_Theta`` (paper: (100, 50) with tanh).
    decay:
        ``"constant"`` (paper default) or ``"network"`` for ``g_Theta``.
    omega:
        The constant decay rate when ``decay == "constant"``; with hours
        as the time unit a value around 0.1-1.0 is typical.
    """

    def __init__(
        self,
        n_features: int,
        *,
        excitation_hidden: tuple[int, ...] = (100, 50),
        decay: str = "constant",
        omega: float = 0.5,
        decay_hidden: tuple[int, ...] = (32,),
        l2: float = 0.0,
        seed: int = 0,
    ):
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if decay not in ("constant", "network"):
            raise ValueError("decay must be 'constant' or 'network'")
        if omega <= 0:
            raise ValueError("omega must be positive")
        self.n_features = n_features
        self.decay = decay
        self.omega = omega
        self.excitation_net = MLP(
            [n_features, *excitation_hidden, 1],
            hidden_activation="tanh",
            output_activation="softplus",
            seed=seed,
            l2=l2,
        )
        self.decay_net: MLP | None = None
        if decay == "network":
            self.decay_net = MLP(
                [n_features, *decay_hidden, 1],
                hidden_activation="tanh",
                output_activation="softplus",
                seed=seed + 1,
                l2=l2,
            )
        self._fitted = False

    # -- parameter readout ------------------------------------------------------

    def predict_parameters(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mu, omega) for each feature row, floored away from zero."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        mu = np.maximum(self.excitation_net.forward(x)[:, 0], _MU_FLOOR)
        if self.decay_net is not None:
            omega = np.maximum(self.decay_net.forward(x)[:, 0], _OMEGA_FLOOR)
        else:
            omega = np.full(x.shape[0], self.omega)
        return mu, omega

    def predict_response_time(
        self, x: np.ndarray, horizon: np.ndarray | float
    ) -> np.ndarray:
        """The paper's r_uq prediction: E[t] from the learned rate."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        horizon = np.broadcast_to(
            np.asarray(horizon, dtype=float), (x.shape[0],)
        )
        mu, omega = self.predict_parameters(x)
        return expected_response_time(mu, omega, horizon)

    # -- likelihood --------------------------------------------------------------

    def _batch_nll_and_grads(
        self,
        x: np.ndarray,
        times: np.ndarray,
        horizons: np.ndarray,
        is_event: np.ndarray,
        *,
        buffered: bool = False,
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Mean NLL over the batch plus dNLL/dmu and dNLL/domega.

        Every pair contributes the compensator
        ``mu (1 - e^{-omega d}) / omega``; event pairs additionally
        contribute the point term ``-(log mu - omega t)``.
        """
        n = x.shape[0]
        mu_raw = self.excitation_net.forward(x, buffered=buffered)[:, 0]
        mu = np.maximum(mu_raw, _MU_FLOOR)
        if self.decay_net is not None:
            omega_raw = self.decay_net.forward(x, buffered=buffered)[:, 0]
            omega = np.maximum(omega_raw, _OMEGA_FLOOR)
        else:
            omega = np.full(n, self.omega)
        exp_od = np.exp(-omega * horizons)
        one_minus = -np.expm1(-omega * horizons)  # 1 - e^{-omega d}
        compensator = mu * one_minus / omega
        point = is_event * (np.log(mu) - omega * times)
        nll = float(np.sum(compensator - point)) / n
        # Gradients of the mean NLL.
        grad_mu = (one_minus / omega - is_event / mu) / n
        grad_omega = (
            mu * (horizons * exp_od * omega - one_minus) / omega**2
            + is_event * times
        ) / n
        return nll, grad_mu, grad_omega

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        times: np.ndarray,
        horizons: np.ndarray,
        is_event: np.ndarray,
        *,
        optimizer: str | Optimizer = "adam",
        epochs: int = 200,
        batch_size: int = 256,
        validation_fraction: float = 0.0,
        patience: int = 20,
        seed: int = 0,
        fused: bool = True,
    ) -> PointProcessFitResult:
        """Maximize the likelihood over a set of (user, question) pairs.

        Parameters
        ----------
        x:
            Feature matrix, one row per pair (events and non-events mixed).
        times:
            Observed response time for event rows; ignored (use 0) for
            non-event rows.
        horizons:
            Observation horizon ``d`` for each pair — how long the pair
            was exposed after the question (the paper uses ``T - t_q0``).
        is_event:
            1.0 where the user answered, 0.0 otherwise.
        validation_fraction:
            When positive, hold out a slice of pairs and early-stop on
            its NLL (restoring the best-epoch weights) — the decay
            network otherwise memorizes training response times.
        """
        x = np.asarray(x, dtype=float)
        times = np.asarray(times, dtype=float)
        horizons = np.asarray(horizons, dtype=float)
        is_event = np.asarray(is_event, dtype=float)
        n = x.shape[0]
        if not (times.shape == horizons.shape == is_event.shape == (n,)):
            raise ValueError("times, horizons and is_event must be (n,) arrays")
        if np.any(horizons <= 0):
            raise ValueError("horizons must be positive")
        if np.any((is_event > 0) & (times < 0)):
            raise ValueError("event times must be non-negative")
        if not np.all(np.isin(is_event, (0.0, 1.0))):
            raise ValueError("is_event must be binary")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        opt = get_optimizer(optimizer)
        rng = np.random.default_rng(seed)
        val_idx: np.ndarray | None = None
        if validation_fraction > 0.0:
            n_val = max(1, int(round(n * validation_fraction)))
            if n_val >= n:
                raise ValueError("validation split leaves no training data")
            order = rng.permutation(n)
            val_idx, train_idx = order[:n_val], order[n_val:]
            x_val, t_val = x[val_idx], times[val_idx]
            h_val, e_val = horizons[val_idx], is_event[val_idx]
            x, times = x[train_idx], times[train_idx]
            horizons, is_event = horizons[train_idx], is_event[train_idx]
            n = x.shape[0]
        if fused:
            # One flat parameter/gradient vector per network: the Adam
            # update touches 2 (or 4) arrays per step instead of one pair
            # per layer, and minibatches gather into fixed buffers.
            params = [self.excitation_net.flat_parameters()]
            grads = [self.excitation_net.flat_gradients()]
            if self.decay_net is not None:
                params.append(self.decay_net.flat_parameters())
                grads.append(self.decay_net.flat_gradients())
        else:
            params = self.excitation_net.parameters()
            if self.decay_net is not None:
                params = params + self.decay_net.parameters()
        result = PointProcessFitResult()
        best_val = np.inf
        best_params: list[np.ndarray] | None = None
        stale = 0
        bs = min(batch_size, n)
        if fused:
            rem = n % bs
            bufs = {
                bs: tuple(np.empty(bs) for _ in range(3))
                + (np.empty((bs, x.shape[1])),)
            }
            if rem:
                bufs[rem] = tuple(np.empty(rem) for _ in range(3)) + (
                    np.empty((rem, x.shape[1])),
                )
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_nll = 0.0
            for start in range(0, n, bs):
                idx = order[start : start + bs]
                if fused:
                    tb, hb, eb, xb = bufs[idx.size]
                    np.take(x, idx, axis=0, out=xb)
                    np.take(times, idx, out=tb)
                    np.take(horizons, idx, out=hb)
                    np.take(is_event, idx, out=eb)
                    nll, grad_mu, grad_omega = self._batch_nll_and_grads(
                        xb, tb, hb, eb, buffered=True
                    )
                    self.excitation_net.backward(grad_mu[:, None], buffered=True)
                    if self.decay_net is not None:
                        self.decay_net.backward(
                            grad_omega[:, None], buffered=True
                        )
                    opt.step(params, grads)
                else:
                    nll, grad_mu, grad_omega = self._batch_nll_and_grads(
                        x[idx], times[idx], horizons[idx], is_event[idx]
                    )
                    self.excitation_net.backward(grad_mu[:, None])
                    step_grads = self.excitation_net.gradients()
                    if self.decay_net is not None:
                        self.decay_net.backward(grad_omega[:, None])
                        step_grads = step_grads + self.decay_net.gradients()
                    opt.step(params, step_grads)
                epoch_nll += nll * len(idx)
            result.nll_history.append(epoch_nll / n)
            if val_idx is not None:
                val_nll, _, _ = self._batch_nll_and_grads(
                    x_val, t_val, h_val, e_val, buffered=fused
                )
                result.validation_history.append(val_nll)
                if val_nll < best_val - 1e-12:
                    best_val = val_nll
                    best_params = [p.copy() for p in params]
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
        if best_params is not None:
            for p, best in zip(params, best_params):
                p[...] = best
        self._fitted = True
        return result

    def nll(
        self,
        x: np.ndarray,
        times: np.ndarray,
        horizons: np.ndarray,
        is_event: np.ndarray,
    ) -> float:
        """Mean negative log likelihood of a set of pairs (no update)."""
        value, _, _ = self._batch_nll_and_grads(
            np.asarray(x, dtype=float),
            np.asarray(times, dtype=float),
            np.asarray(horizons, dtype=float),
            np.asarray(is_event, dtype=float),
        )
        return value
