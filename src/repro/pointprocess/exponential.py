"""Exponentially-decaying excitation point process (paper Sec. II-A.3).

The rate of user u answering question q at elapsed time ``t`` after the
question is posted is ``lambda(t) = mu * exp(-omega * t)`` with initial
excitation ``mu > 0`` and decay ``omega > 0``.  This module implements
the closed-form quantities the paper derives:

* the integrated rate (compensator) over a horizon,
* the per-thread log likelihood,
* the expected response-time prediction
  ``E[t] = mu / omega^2 * (1 - e^{-omega d} (1 + omega d))`` where ``d``
  is the observation horizon after the question.

All functions are vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rate",
    "integrated_rate",
    "expected_response_time",
    "conditional_expected_time",
    "log_likelihood",
]

_EPS = 1e-12


def _validate_positive(name: str, value: np.ndarray) -> np.ndarray:
    value = np.asarray(value, dtype=float)
    if np.any(value <= 0):
        raise ValueError(f"{name} must be strictly positive")
    return value


def rate(mu: np.ndarray, omega: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Instantaneous rate ``mu * exp(-omega * t)`` at elapsed time ``t >= 0``."""
    mu = _validate_positive("mu", mu)
    omega = _validate_positive("omega", omega)
    t = np.asarray(t, dtype=float)
    if np.any(t < 0):
        raise ValueError("elapsed time must be non-negative")
    return mu * np.exp(-omega * t)


def integrated_rate(
    mu: np.ndarray, omega: np.ndarray, horizon: np.ndarray
) -> np.ndarray:
    """Compensator ``int_0^d lambda = mu (1 - e^{-omega d}) / omega``."""
    mu = _validate_positive("mu", mu)
    omega = _validate_positive("omega", omega)
    horizon = np.asarray(horizon, dtype=float)
    if np.any(horizon < 0):
        raise ValueError("horizon must be non-negative")
    return mu * -np.expm1(-omega * horizon) / omega


def expected_response_time(
    mu: np.ndarray, omega: np.ndarray, horizon: np.ndarray
) -> np.ndarray:
    """The paper's response-time prediction ``int_0^d tau lambda(tau) dtau``.

    Closed form: ``mu / omega^2 * (1 - e^{-omega d} (1 + omega d))``.
    Note this is the *unnormalized* first moment of the rate, exactly as
    in the paper (it is not divided by the probability of answering).
    """
    mu = _validate_positive("mu", mu)
    omega = _validate_positive("omega", omega)
    horizon = np.asarray(horizon, dtype=float)
    if np.any(horizon < 0):
        raise ValueError("horizon must be non-negative")
    od = omega * horizon
    return mu / omega**2 * (1.0 - np.exp(-od) * (1.0 + od))


def conditional_expected_time(
    mu: np.ndarray, omega: np.ndarray, horizon: np.ndarray
) -> np.ndarray:
    """Expected event time *given* an event occurs within the horizon.

    ``E[t | event] = expected_response_time / integrated_rate``; unlike
    the paper's unnormalized prediction this is invariant to rescaling
    ``mu``, which makes it a useful diagnostic of what the decay learned.
    """
    numer = expected_response_time(mu, omega, horizon)
    denom = integrated_rate(mu, omega, horizon)
    return numer / np.maximum(denom, _EPS)


def log_likelihood(
    event_mu: np.ndarray,
    event_omega: np.ndarray,
    event_times: np.ndarray,
    all_mu: np.ndarray,
    all_omega: np.ndarray,
    all_horizons: np.ndarray,
) -> float:
    """Thread log likelihood (paper Sec. II-A.3).

    ``sum_events log lambda(t_i) - sum_pairs int_0^d lambda``, where the
    event sums run over observed (user, question, time) responses and
    the compensator sum runs over *all* candidate pairs (responders and
    non-responders alike).
    """
    event_mu = _validate_positive("event_mu", event_mu)
    event_omega = _validate_positive("event_omega", event_omega)
    event_times = np.asarray(event_times, dtype=float)
    if event_mu.shape != event_omega.shape or event_mu.shape != event_times.shape:
        raise ValueError("event arrays must share a shape")
    if np.any(event_times < 0):
        raise ValueError("event times must be non-negative")
    point_term = float(
        np.sum(np.log(event_mu) - event_omega * event_times)
    )
    compensator = float(np.sum(integrated_rate(all_mu, all_omega, all_horizons)))
    return point_term - compensator
