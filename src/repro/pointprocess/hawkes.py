"""Self-exciting (Hawkes) extension of the thread answer process.

The paper's point process treats every (user, question) pair as an
independent inhomogeneous Poisson process excited once by the question
post.  Its cited framework (Farajtabar et al. [18]) is *mutually
exciting*: every answer in a thread raises the rate of further answers.
This module implements that extension at the thread level:

    lambda(t) = mu * exp(-omega * t)
                + alpha * sum_{t_j < t} exp(-beta * (t - t_j))

with base excitation ``mu`` decaying at rate ``omega`` from the
question post, and each answer at time ``t_j`` adding a jump of height
``alpha`` decaying at rate ``beta``.  Provides the exact log
likelihood, compensator, branching-ratio diagnostics, MLE fitting of
``(mu, alpha)`` given the decays (a convex sub-problem solved by
projected gradient), and exact simulation by Ogata thinning.

Stability requires a branching ratio ``alpha / beta < 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HawkesThreadModel", "hawkes_intensity", "hawkes_log_likelihood"]


def _validate_times(times: np.ndarray, horizon: float) -> np.ndarray:
    times = np.sort(np.asarray(times, dtype=float))
    if times.size and (times[0] < 0 or times[-1] > horizon):
        raise ValueError("event times must lie in [0, horizon]")
    return times


def hawkes_intensity(
    t: float,
    times: np.ndarray,
    mu: float,
    omega: float,
    alpha: float,
    beta: float,
) -> float:
    """Intensity at time ``t`` given (strictly) earlier events."""
    if min(mu, omega, beta) <= 0 or alpha < 0:
        raise ValueError("parameters must be positive (alpha non-negative)")
    times = np.asarray(times, dtype=float)
    earlier = times[times < t]
    base = mu * np.exp(-omega * t)
    excitation = alpha * np.exp(-beta * (t - earlier)).sum()
    return float(base + excitation)


def hawkes_log_likelihood(
    times: np.ndarray,
    horizon: float,
    mu: float,
    omega: float,
    alpha: float,
    beta: float,
) -> float:
    """Exact log likelihood of one thread's answer times.

    ``sum_i log lambda(t_i) - int_0^T lambda`` with the closed-form
    compensator
    ``mu (1 - e^{-omega T}) / omega + alpha/beta * sum_i (1 - e^{-beta (T - t_i)})``.
    """
    if min(mu, omega, beta) <= 0 or alpha < 0:
        raise ValueError("parameters must be positive (alpha non-negative)")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    times = _validate_times(times, horizon)
    log_term = 0.0
    # Recursive computation of the excitation sum (O(n)).
    excitation = 0.0
    prev_t = None
    for t in times:
        if prev_t is not None:
            excitation = (excitation + alpha) * np.exp(-beta * (t - prev_t))
        rate = mu * np.exp(-omega * t) + excitation
        if rate <= 0:
            return -np.inf
        log_term += np.log(rate)
        prev_t = t
    compensator = mu * -np.expm1(-omega * horizon) / omega
    if times.size:
        compensator += alpha / beta * float(
            (-np.expm1(-beta * (horizon - times))).sum()
        )
    return log_term - compensator


@dataclass(frozen=True)
class _Thread:
    times: np.ndarray
    horizon: float


class HawkesThreadModel:
    """Thread-level self-exciting answer process.

    Fits global ``(mu, alpha)`` over a corpus of threads with the decay
    rates ``(omega, beta)`` fixed (profile likelihood over the linear
    parameters — the standard EM-free approach when decays are chosen
    on a grid).
    """

    def __init__(self, omega: float = 0.5, beta: float = 1.0):
        if omega <= 0 or beta <= 0:
            raise ValueError("omega and beta must be positive")
        self.omega = omega
        self.beta = beta
        self.mu_: float | None = None
        self.alpha_: float | None = None

    @property
    def branching_ratio(self) -> float:
        """Expected children per answer, ``alpha / beta``; < 1 is stable."""
        if self.alpha_ is None:
            raise RuntimeError("model is not fitted")
        return self.alpha_ / self.beta

    def fit(
        self,
        thread_times: list[np.ndarray],
        horizons: list[float] | np.ndarray,
        *,
        max_iter: int = 500,
        learning_rate: float = 0.05,
        tol: float = 1e-9,
        alpha_fixed: float | None = None,
    ) -> "HawkesThreadModel":
        """MLE of ``(mu, alpha)`` by projected gradient ascent.

        The log likelihood is concave in ``(mu, alpha)`` for fixed
        decays, so this converges to the global optimum.  Passing
        ``alpha_fixed`` (e.g. 0.0) pins the excitation and fits ``mu``
        alone — the restricted question-excitation-only model.
        """
        if len(thread_times) != len(horizons):
            raise ValueError("thread_times and horizons length mismatch")
        if not thread_times:
            raise ValueError("need at least one thread")
        threads = [
            _Thread(_validate_times(t, h), float(h))
            for t, h in zip(thread_times, horizons)
        ]
        omega, beta = self.omega, self.beta
        # Precompute per-event base/excitation kernels and exposures.
        base_kernels: list[np.ndarray] = []  # e^{-omega t_i} per thread
        excite_kernels: list[np.ndarray] = []  # sum_j<i e^{-beta (t_i-t_j)}
        base_exposure = 0.0
        excite_exposure = 0.0
        for th in threads:
            base_kernels.append(np.exp(-omega * th.times))
            kernel = np.zeros(th.times.size)
            running = 0.0
            prev = None
            for i, t in enumerate(th.times):
                if prev is not None:
                    running = (running + 1.0) * np.exp(-beta * (t - prev))
                kernel[i] = running
                prev = t
            excite_kernels.append(kernel)
            base_exposure += -np.expm1(-omega * th.horizon) / omega
            if th.times.size:
                excite_exposure += float(
                    (-np.expm1(-beta * (th.horizon - th.times))).sum() / beta
                )
        mu = 0.1
        alpha = 0.1 if alpha_fixed is None else float(alpha_fixed)
        prev_ll = -np.inf
        for _ in range(max_iter):
            grad_mu = -base_exposure
            grad_alpha = -excite_exposure
            ll = -mu * base_exposure - alpha * excite_exposure
            for bk, ek in zip(base_kernels, excite_kernels):
                rate = mu * bk + alpha * ek
                np.maximum(rate, 1e-300, out=rate)
                ll += float(np.log(rate).sum())
                grad_mu += float((bk / rate).sum())
                grad_alpha += float((ek / rate).sum())
            mu = max(mu + learning_rate * grad_mu / len(threads), 1e-8)
            if alpha_fixed is None:
                alpha = max(
                    alpha + learning_rate * grad_alpha / len(threads), 0.0
                )
            if abs(ll - prev_ll) < tol:
                break
            prev_ll = ll
        self.mu_, self.alpha_ = float(mu), float(alpha)
        return self

    def log_likelihood(
        self, thread_times: list[np.ndarray], horizons
    ) -> float:
        """Total log likelihood of a corpus under the fitted parameters."""
        if self.mu_ is None:
            raise RuntimeError("model is not fitted")
        total = 0.0
        for times, horizon in zip(thread_times, horizons):
            total += hawkes_log_likelihood(
                times, float(horizon), self.mu_, self.omega, self.alpha_, self.beta
            )
        return total

    def expected_count(self, horizon: float) -> float:
        """Expected number of answers in ``[0, horizon]``.

        Uses the branching-process identity: each base (immigrant) event
        spawns ``alpha / beta`` children in expectation, so the total
        cluster size per immigrant is ``1 / (1 - alpha/beta)``.  The
        horizon truncation is applied to the immigrant intensity only —
        exact as ``horizon -> inf`` and an upper-bound approximation for
        finite horizons (children near the boundary may fall outside).
        """
        if self.mu_ is None:
            raise RuntimeError("model is not fitted")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.branching_ratio >= 1.0:
            raise ValueError("supercritical process: expected count diverges")
        immigrants = self.mu_ * -np.expm1(-self.omega * horizon) / self.omega
        return float(immigrants / (1.0 - self.branching_ratio))

    def simulate(
        self, horizon: float, rng: np.random.Generator, *, mu: float | None = None
    ) -> np.ndarray:
        """Exact simulation by Ogata thinning under the fitted parameters."""
        if self.mu_ is None:
            raise RuntimeError("model is not fitted")
        mu = self.mu_ if mu is None else mu
        alpha, beta, omega = self.alpha_, self.beta, self.omega
        times: list[float] = []
        t = 0.0
        while t < horizon:
            # The intensity decays monotonically between events, so its
            # value just after t bounds it until the next event.
            bound = max(
                hawkes_intensity(t + 1e-12, np.array(times), mu, omega, alpha, beta),
                1e-12,
            )
            t += rng.exponential(1.0 / bound)
            if t >= horizon:
                break
            rate = hawkes_intensity(t, np.array(times), mu, omega, alpha, beta)
            if rng.uniform() <= rate / bound:
                times.append(t)
        return np.array(times)
