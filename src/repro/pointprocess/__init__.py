"""Point-process substrate for the response-timing model."""

from .exponential import (
    conditional_expected_time,
    expected_response_time,
    integrated_rate,
    log_likelihood,
    rate,
)
from .hawkes import HawkesThreadModel, hawkes_intensity, hawkes_log_likelihood
from .model import ExcitationPointProcess, PointProcessFitResult
from .simulate import simulate_event_times, simulate_first_event_time

__all__ = [
    "conditional_expected_time",
    "expected_response_time",
    "integrated_rate",
    "log_likelihood",
    "rate",
    "HawkesThreadModel",
    "hawkes_intensity",
    "hawkes_log_likelihood",
    "ExcitationPointProcess",
    "PointProcessFitResult",
    "simulate_event_times",
    "simulate_first_event_time",
]
