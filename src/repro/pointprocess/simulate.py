"""Exact simulation of the exponential-decay point process.

Used by property tests (and by the forum generator's validation): for an
inhomogeneous Poisson process the event count over ``[0, d]`` is
Poisson with mean equal to the compensator, and given the count, event
times are i.i.d. with density ``lambda(t) / int lambda``, which inverts
in closed form for the exponential rate.
"""

from __future__ import annotations

import numpy as np

from .exponential import integrated_rate

__all__ = ["simulate_event_times", "simulate_first_event_time"]


def simulate_event_times(
    mu: float,
    omega: float,
    horizon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """All event times of one realization over ``[0, horizon]``, sorted."""
    mean_count = float(integrated_rate(mu, omega, horizon))
    n = rng.poisson(mean_count)
    if n == 0:
        return np.empty(0)
    # Inverse CDF of the normalized rate: F(t) = (1-e^{-wt}) / (1-e^{-wd}).
    u = rng.uniform(size=n)
    denom = -np.expm1(-omega * horizon)
    times = -np.log1p(-u * denom) / omega
    return np.sort(times)


def simulate_first_event_time(
    mu: float,
    omega: float,
    horizon: float,
    rng: np.random.Generator,
) -> float | None:
    """Time of the first event, or ``None`` if none occurs in the window."""
    times = simulate_event_times(mu, omega, horizon, rng)
    return float(times[0]) if times.size else None
