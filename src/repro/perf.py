"""Lightweight stage timers and counters for the hot paths.

Every expensive stage (extractor construction, batch featurization,
per-fold fit/eval, online refits) reports into a process-wide
:class:`PerfRegistry` so speedups are observable rather than asserted:

    from repro import perf

    with perf.timer("features.batch"):
        x = extractor.feature_matrix(pairs)
    perf.incr("features.pairs", len(pairs))
    print(perf.report())

Timers nest freely and cost one ``perf.perf_counter`` pair each, so the
instrumentation stays on permanently.  Registries are per process;
worker processes of the parallel CV harness accumulate into their own
registry, and the parent times the whole dispatch instead.
"""

from __future__ import annotations

import math
import resource
import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "StageStat",
    "LatencyHistogram",
    "PerfRegistry",
    "get_registry",
    "use_registry",
    "timer",
    "incr",
    "gauge_max",
    "record_latency",
    "histogram",
    "peak_rss_bytes",
    "record_peak_rss",
    "report",
    "reset",
]

# ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


@dataclass
class StageStat:
    """Accumulated timing of one named stage."""

    calls: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average seconds per call; 0.0 before the first call."""
        return self.total_seconds / self.calls if self.calls else 0.0


class LatencyHistogram:
    """Fixed log-spaced bucket histogram over positive durations.

    Latency distributions of a serving system span decades (a hit on a
    warm batch is microseconds of queueing; a refit stall is seconds),
    so buckets are geometric: ``buckets_per_decade`` per factor of 10
    between ``low`` and ``high`` seconds.  Memory is a fixed few KB no
    matter how many samples are recorded, unlike the per-call sample
    lists kept for stage timers, which makes it safe to record every
    request of a load run.  ``percentile(p)`` answers from the bucket
    counts with a relative error bounded by one bucket ratio (~6% at
    the default resolution); exact ``min``/``max``/``sum`` are kept on
    the side so the tails and the mean stay sharp.
    """

    def __init__(
        self,
        low: float = 1e-6,
        high: float = 3600.0,
        buckets_per_decade: int = 40,
    ):
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.buckets_per_decade = int(buckets_per_decade)
        self._log_low = math.log10(self.low)
        span_decades = math.log10(self.high) - self._log_low
        # +2: one underflow bucket below ``low``, one overflow above
        # ``high``; in-range values land in 1..n_core.
        self._n_core = max(1, math.ceil(span_decades * buckets_per_decade))
        self._counts = [0] * (self._n_core + 2)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, seconds: float) -> None:
        """Fold one duration (seconds) into the histogram."""
        seconds = float(seconds)
        if not math.isfinite(seconds):
            return
        if seconds < self.low:
            idx = 0
        elif seconds >= self.high:
            idx = self._n_core + 1
        else:
            idx = 1 + int(
                (math.log10(seconds) - self._log_low)
                * self.buckets_per_decade
            )
            idx = min(max(idx, 1), self._n_core)
        self._counts[idx] += 1
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def _bucket_upper(self, idx: int) -> float:
        """Upper edge of bucket ``idx`` (seconds)."""
        if idx <= 0:
            # Underflow holds samples below ``low``; the observed min is
            # the only exact statement we can make about them.
            return self.min if self.count else self.low
        if idx >= self._n_core + 1:
            return self.max if self.count else self.high
        return 10.0 ** (self._log_low + idx / self.buckets_per_decade)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile in seconds; NaN when empty.

        Returns the upper edge of the bucket holding the rank, clamped
        to the exact observed ``[min, max]`` so degenerate histograms
        (all samples equal) answer exactly.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        rank = max(1, int(-(-p * self.count // 100)))  # ceil(p/100 * n)
        cumulative = 0
        for idx, n in enumerate(self._counts):
            cumulative += n
            if cumulative >= rank:
                return min(max(self._bucket_upper(idx), self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        """Picklable dump, foldable into another histogram via merge."""
        return {
            "low": self.low,
            "high": self.high,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self._counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (same bucket layout) into this one."""
        if (
            snap["low"] != self.low
            or snap["high"] != self.high
            or snap["buckets_per_decade"] != self.buckets_per_decade
        ):
            raise ValueError("histogram bucket layouts differ")
        for idx, n in enumerate(snap["counts"]):
            self._counts[idx] += n
        self.count += snap["count"]
        self.sum += snap["sum"]
        self.min = min(self.min, snap["min"])
        self.max = max(self.max, snap["max"])

    @classmethod
    def from_snapshot(cls, snap: dict) -> "LatencyHistogram":
        hist = cls(snap["low"], snap["high"], snap["buckets_per_decade"])
        hist.merge(snap)
        return hist


class PerfRegistry:
    """Thread-safe collection of named stage timers and counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._stages: dict[str, StageStat] = {}
        self._samples: dict[str, list[float]] = {}
        self._counters: dict[str, int] = {}
        self._gauges: set[str] = set()
        self._hists: dict[str, LatencyHistogram] = {}

    # -- recording ---------------------------------------------------------

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating wall-clock time under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            stat = self._stages.get(name)
            if stat is None:
                stat = self._stages[name] = StageStat()
                self._samples[name] = []
            stat.calls += 1
            stat.total_seconds += seconds
            self._samples[name].append(seconds)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_latency(self, name: str, seconds: float) -> None:
        """Fold one duration into the named latency histogram.

        Histograms are the percentile-capable counterpart of stage
        timers: fixed memory per name regardless of sample count, so the
        serving layer records every request.  Query with
        :meth:`percentile` or :meth:`histogram`.
        """
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = LatencyHistogram()
            hist.record(seconds)

    @contextmanager
    def latency_timer(self, name: str):
        """Context manager recording wall-clock time into a histogram."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_latency(name, time.perf_counter() - start)

    def gauge_max(self, name: str, value: int) -> None:
        """High-water counter: keeps the max ever recorded under ``name``.

        Gauges live in the same namespace as counters (so
        :meth:`counters_with_prefix` reports them), but :meth:`merge`
        folds them with ``max`` instead of ``+`` — the peak RSS of a
        process tree is the max over its members, not their sum.
        """
        with self._lock:
            self._gauges.add(name)
            current = self._counters.get(name)
            if current is None or value > current:
                self._counters[name] = int(value)

    # -- inspection --------------------------------------------------------

    def stages(self) -> dict[str, StageStat]:
        """Snapshot of all stage stats (copies, safe to keep)."""
        with self._lock:
            return {
                name: StageStat(s.calls, s.total_seconds)
                for name, s in self._stages.items()
            }

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def stage(self, name: str) -> StageStat:
        """Stats for one stage; zeros if it never ran."""
        with self._lock:
            stat = self._stages.get(name)
            return StageStat(stat.calls, stat.total_seconds) if stat else StageStat()

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix``.

        The resilience layer namespaces its counters under
        ``resilience.`` (faults injected, events repaired/quarantined,
        refit retries/fallbacks); this gives operators the whole family
        in one call.
        """
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def histogram(self, name: str) -> LatencyHistogram:
        """Copy of the named latency histogram; empty if never recorded."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                return LatencyHistogram()
            return LatencyHistogram.from_snapshot(hist.snapshot())

    def percentile(self, name: str, p: float) -> float:
        """Percentile (seconds) of one latency histogram; NaN if empty."""
        with self._lock:
            hist = self._hists.get(name)
            return hist.percentile(p) if hist is not None else float("nan")

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Snapshot copies of every latency histogram."""
        with self._lock:
            return {
                name: LatencyHistogram.from_snapshot(h.snapshot())
                for name, h in self._hists.items()
            }

    def samples(self, name: str) -> list[float]:
        """Per-call durations of one stage in recording order.

        Lets benchmarks separate one-time costs from steady state (e.g.
        the first online refit pays the warmup topic fit).
        """
        with self._lock:
            return list(self._samples.get(name, ()))

    def snapshot(self) -> dict:
        """Picklable dump of every sample and counter.

        Worker processes record into their own process-wide registry and
        ship this dict back with their result; the parent folds it in
        with :meth:`merge`, so parallel fits keep the same per-stage
        stats that a serial run would produce.
        """
        with self._lock:
            return {
                "samples": {n: list(s) for n, s in self._samples.items()},
                "counters": dict(self._counters),
                "gauges": sorted(self._gauges),
                "histograms": {
                    n: h.snapshot() for n, h in self._hists.items()
                },
            }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one."""
        for name, samples in snap.get("samples", {}).items():
            for seconds in samples:
                self.add_time(name, seconds)
        gauges = set(snap.get("gauges", ()))
        for name, amount in snap.get("counters", {}).items():
            if name in gauges:
                self.gauge_max(name, amount)
            else:
                self.incr(name, amount)
        for name, hist_snap in snap.get("histograms", {}).items():
            with self._lock:
                hist = self._hists.get(name)
                if hist is None:
                    self._hists[name] = LatencyHistogram.from_snapshot(
                        hist_snap
                    )
                else:
                    hist.merge(hist_snap)

    def report(self) -> str:
        """Human-readable table of every stage and counter."""
        lines = ["stage                                  calls      total      mean"]
        for name in sorted(self._stages):
            stat = self.stage(name)
            lines.append(
                f"{name:38s} {stat.calls:5d} {stat.total_seconds:9.4f}s"
                f" {stat.mean_seconds:8.5f}s"
            )
        counters = self.counters()
        if counters:
            lines.append("counter                                value")
            for name in sorted(counters):
                lines.append(f"{name:38s} {counters[name]:6d}")
        hists = self.histograms()
        if hists:
            lines.append(
                "latency                                count       p50"
                "       p95       p99"
            )
            for name in sorted(hists):
                hist = hists[name]
                lines.append(
                    f"{name:38s} {hist.count:5d} "
                    f"{hist.percentile(50) * 1e3:8.3f}ms"
                    f" {hist.percentile(95) * 1e3:8.3f}ms"
                    f" {hist.percentile(99) * 1e3:8.3f}ms"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()
            self._samples.clear()
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


_REGISTRY = PerfRegistry()


def get_registry() -> PerfRegistry:
    """The process-wide default registry."""
    return _REGISTRY


@contextmanager
def use_registry(registry: PerfRegistry | None = None):
    """Route the module-level helpers to ``registry`` inside the block.

    Benchmarks and tests use this to measure one code path in a private
    registry without resetting (or polluting) the process-wide stats:

        with perf.use_registry() as reg:
            loop.run(dataset)
        print(reg.stage("online.refit").total_seconds)

    A fresh registry is created when none is given.  Not safe to nest
    across threads — the swap is process-global, matching how the
    default registry is used.
    """
    global _REGISTRY
    if registry is None:
        registry = PerfRegistry()
    previous = _REGISTRY
    _REGISTRY = registry
    try:
        yield registry
    finally:
        _REGISTRY = previous


def timer(name: str):
    """``with perf.timer("stage"):`` on the default registry."""
    return _REGISTRY.timer(name)


def incr(name: str, amount: int = 1) -> None:
    _REGISTRY.incr(name, amount)


def gauge_max(name: str, value: int) -> None:
    _REGISTRY.gauge_max(name, value)


def record_latency(name: str, seconds: float) -> None:
    """Fold one duration into a histogram on the default registry."""
    _REGISTRY.record_latency(name, seconds)


def histogram(name: str) -> LatencyHistogram:
    """Copy of a latency histogram from the default registry."""
    return _REGISTRY.histogram(name)


def peak_rss_bytes(*, include_children: bool = False) -> int:
    """Peak resident-set size of this process (bytes), from ``getrusage``.

    ``ru_maxrss`` is a kernel-maintained high-water mark: it needs no
    polling thread and cannot miss a transient spike.  With
    ``include_children`` the max over waited-for children (shard
    workers) is folded in — peaks don't add across processes, so the
    max is the honest "largest single process" figure.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_SCALE
    if include_children:
        child = (
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
            * _RU_MAXRSS_SCALE
        )
        peak = max(peak, child)
    return int(peak)


def record_peak_rss(
    prefix: str = "mem", registry: PerfRegistry | None = None
) -> dict[str, int]:
    """Record memory high-water gauges under ``prefix``.

    Writes ``<prefix>.peak_rss_bytes`` (this process) and
    ``<prefix>.child_peak_rss_bytes`` (largest waited-for child); when
    :mod:`tracemalloc` is tracing, ``<prefix>.tracemalloc_peak_bytes``
    (python-allocation high water) is added too.  All are ``gauge_max``
    counters, so repeated calls keep the running maximum and
    ``counters_with_prefix(prefix + ".")`` returns the family.
    """
    reg = registry if registry is not None else _REGISTRY
    values = {
        f"{prefix}.peak_rss_bytes": peak_rss_bytes(),
        f"{prefix}.child_peak_rss_bytes": int(
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
            * _RU_MAXRSS_SCALE
        ),
    }
    if tracemalloc.is_tracing():
        values[f"{prefix}.tracemalloc_peak_bytes"] = (
            tracemalloc.get_traced_memory()[1]
        )
    for name, value in values.items():
        reg.gauge_max(name, value)
    return values


def report() -> str:
    return _REGISTRY.report()


def reset() -> None:
    _REGISTRY.reset()
