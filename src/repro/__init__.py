"""repro — reproduction of "Predicting the Timing and Quality of Responses
in Online Discussion Forums" (Hansen et al., IEEE ICDCS 2019).

Public API highlights:

* :class:`repro.forum.ForumConfig` / :func:`repro.forum.generate_forum` —
  the synthetic Stack Overflow dataset substitute;
* :class:`repro.core.ForumPredictor` — end-to-end joint prediction of
  whether, how well, and how fast a user answers a question;
* :class:`repro.core.QuestionRouter` — the Sec.-V recommendation LP;
* ``repro.core.run_table1`` and friends — the evaluation harness that
  regenerates every table and figure of the paper.
"""

from . import baselines, core, forum, graphs, ml, perf, pointprocess, topics
from .core import (
    ForumPredictor,
    Prediction,
    PredictorConfig,
    QuestionRouter,
    RoutingResult,
)
from .forum import ForumConfig, ForumDataset, generate_forum

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "forum",
    "graphs",
    "ml",
    "perf",
    "pointprocess",
    "topics",
    "ForumPredictor",
    "Prediction",
    "PredictorConfig",
    "QuestionRouter",
    "RoutingResult",
    "ForumConfig",
    "ForumDataset",
    "generate_forum",
    "__version__",
]
