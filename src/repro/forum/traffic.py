"""Seeded concurrent-traffic generator for the serving load harness.

Turns a historical :class:`~repro.forum.dataset.ForumDataset` into a
schedule of *requests* against the async serving stack: question
queries from a population of fresh concurrent askers, interleaved with
event submissions (new answered threads) that keep the engine's
sliding window moving.  Arrivals follow a bursty mixture — a uniform
background plus Laplace-shaped flash crowds around a few burst centres
— because admission control and micro-batching are only exercised by
load that actually clumps.

Everything is drawn from one ``numpy`` generator seeded by
``TrafficConfig.seed``: identical configs produce identical schedules
(arrival times, asker ids, bodies, answers) on any machine, which is
what makes the load harness bit-reproducible under the virtual clock.

Two time axes: ``arrival_s`` is *virtual seconds* on the serving clock
(latency is measured on this axis), while thread timestamps are *forum
hours* continuing the dataset's own clock at
``hours_per_second`` per virtual second.  Requests are emitted in
arrival order with non-decreasing ``created_at``, so the StreamGuard's
stream-clock invariants hold along the schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .dataset import ForumDataset
from .models import Post, Thread

__all__ = [
    "TrafficConfig",
    "TrafficRequest",
    "generate_traffic",
    "scenario_seed_sequence",
    "derive_rng",
]


def _label_key(label: str) -> int:
    """A stable 64-bit spawn key for a scenario label.

    sha256-derived, so it depends only on the label string — never on
    registration order, interpreter hash randomization, or how many
    other labels exist.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def scenario_seed_sequence(seed: int, label: str) -> np.random.SeedSequence:
    """A child :class:`~numpy.random.SeedSequence` for one scenario label.

    The spawn mechanism (``SeedSequence(entropy, spawn_key=...)``) is
    how numpy derives statistically independent child streams; keying
    the spawn by a content hash of the label instead of a running index
    (and instead of the old ``seed + i`` arithmetic) means adding,
    removing or reordering scenario presets can never perturb another
    preset's stream — the property the cross-preset stability test
    pins.
    """
    return np.random.SeedSequence(entropy=seed, spawn_key=(_label_key(label),))


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """A seeded generator on the label's independent spawned stream."""
    return np.random.default_rng(scenario_seed_sequence(seed, label))


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one synthetic load run."""

    n_askers: int = 1000  # distinct fresh askers, one query each
    n_events: int = 200  # answered-thread submissions interleaved
    duration_s: float = 60.0  # virtual seconds the arrivals span
    n_bursts: int = 4
    burst_fraction: float = 0.6  # share of arrivals inside bursts
    burst_width_s: float = 0.5  # Laplace scale around each burst centre
    # Forum hours that pass per virtual second; the default keeps a
    # 60 s run well inside one refit interval.
    hours_per_second: float = 0.01
    max_answers_per_event: int = 3
    # Share of queries that re-ask an earlier query's exact thread
    # (same id, same asker) — repeat traffic for exercising the
    # serving-side prediction cache.  0 keeps every query unique and
    # leaves the seeded schedule bit-identical to older versions.
    repeat_fraction: float = 0.0
    seed: int = 0
    # Scenario label for the RNG stream.  Empty (the default) keeps the
    # legacy ``default_rng(seed)`` stream bit-identical to older
    # versions; when set, the schedule draws from the label's spawned
    # ``SeedSequence`` child so each scenario preset gets its own
    # independent stream regardless of what other presets exist.
    scenario: str = ""

    def __post_init__(self):
        if self.n_askers < 1:
            raise ValueError("n_askers must be >= 1")
        if self.n_events < 0:
            raise ValueError("n_events must be non-negative")
        if self.duration_s <= 0 or self.hours_per_second <= 0:
            raise ValueError("durations must be positive")
        if self.n_bursts < 0 or self.burst_width_s < 0:
            raise ValueError("burst shape must be non-negative")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in [0, 1]")
        if self.max_answers_per_event < 1:
            raise ValueError("max_answers_per_event must be >= 1")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ValueError("repeat_fraction must be in [0, 1]")


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled submission against the service."""

    kind: str  # "query" | "event"
    arrival_s: float  # virtual seconds from the start of the run
    thread: Thread


def _arrivals(rng: np.random.Generator, n: int, cfg: TrafficConfig):
    """Bursty arrival offsets in [0, duration_s)."""
    times = rng.uniform(0.0, cfg.duration_s, size=n)
    if cfg.n_bursts and cfg.burst_fraction > 0:
        centres = rng.uniform(0.0, cfg.duration_s, size=cfg.n_bursts)
        in_burst = rng.random(n) < cfg.burst_fraction
        which = rng.integers(0, cfg.n_bursts, size=n)
        jitter = rng.laplace(0.0, max(cfg.burst_width_s, 1e-9), size=n)
        burst_times = centres[which] + jitter
        times = np.where(in_burst, burst_times, times)
    eps = np.finfo(float).eps * cfg.duration_s
    return np.clip(times, 0.0, cfg.duration_s - eps)


def generate_traffic(
    dataset: ForumDataset, config: TrafficConfig | None = None
) -> list[TrafficRequest]:
    """Build the seeded request schedule, sorted by arrival time.

    Queries come from fresh asker ids above every id in ``dataset`` (so
    an asker never excludes itself from the candidate set); events are
    new answered threads whose askers and answerers are sampled from
    the historical populations, keeping refits feasible during load.
    Bodies are resampled from the dataset's own posts so the fitted
    topic model stays in-vocabulary.
    """
    cfg = config or TrafficConfig()
    if len(dataset) == 0:
        raise ValueError("traffic generation needs a non-empty dataset")
    if cfg.scenario:
        rng = derive_rng(cfg.seed, f"traffic/{cfg.scenario}")
    else:
        rng = np.random.default_rng(cfg.seed)

    users = sorted(
        {t.asker for t in dataset} | {a for t in dataset for a in t.answerers}
    )
    answerers = sorted({a for t in dataset for a in t.answerers})
    askers = sorted({t.asker for t in dataset})
    question_bodies = [t.question.body for t in dataset]
    answer_bodies = [a.body for t in dataset for a in t.answers]
    if not answer_bodies:
        answer_bodies = question_bodies

    next_user = max(users) + 1
    next_thread = max(t.thread_id for t in dataset) + 1
    next_post = max(p.post_id for t in dataset for p in t.posts) + 1
    t0_hours = max(t.created_at for t in dataset)

    n = cfg.n_askers + cfg.n_events
    arrivals = _arrivals(rng, n, cfg)
    kinds = np.array(
        ["query"] * cfg.n_askers + ["event"] * cfg.n_events, dtype=object
    )
    # Pre-draw per-request randomness in schedule order so the output
    # depends only on the seed, not on sort incidentals.
    order = np.argsort(arrivals, kind="stable")
    arrivals, kinds = arrivals[order], kinds[order]

    query_askers = next_user + rng.permutation(cfg.n_askers)
    requests: list[TrafficRequest] = []
    issued_queries: list[Thread] = []
    last_created = t0_hours
    q_idx = 0
    for arrival, kind in zip(arrivals, kinds):
        created = t0_hours + float(arrival) * cfg.hours_per_second
        created = max(created, last_created)  # guard's stream clock
        last_created = created
        thread_id = next_thread
        next_thread += 1
        if kind == "query":
            # Repeat traffic: re-ask an earlier query verbatim (same
            # thread, so serving sees identical (user, thread) pairs).
            # Gated draws keep repeat_fraction=0 schedules bit-identical
            # to versions without the knob.
            if (
                cfg.repeat_fraction > 0
                and issued_queries
                and rng.random() < cfg.repeat_fraction
            ):
                repeated = issued_queries[
                    rng.integers(len(issued_queries))
                ]
                requests.append(
                    TrafficRequest("query", float(arrival), repeated)
                )
                continue
            author = int(query_askers[q_idx])
            q_idx += 1
            body = question_bodies[rng.integers(len(question_bodies))]
            question = Post(
                post_id=next_post,
                thread_id=thread_id,
                author=author,
                timestamp=created,
                votes=0,
                body=body,
                is_question=True,
            )
            next_post += 1
            thread = Thread(question)
            issued_queries.append(thread)
            requests.append(
                TrafficRequest("query", float(arrival), thread)
            )
            continue
        author = int(askers[rng.integers(len(askers))])
        question = Post(
            post_id=next_post,
            thread_id=thread_id,
            author=author,
            timestamp=created,
            votes=int(rng.integers(0, 4)),
            body=question_bodies[rng.integers(len(question_bodies))],
            is_question=True,
        )
        next_post += 1
        answers = []
        k = int(rng.integers(1, cfg.max_answers_per_event + 1))
        who = rng.choice(len(answerers), size=min(k, len(answerers)),
                         replace=False)
        for u in who:
            answers.append(
                Post(
                    post_id=next_post,
                    thread_id=thread_id,
                    author=int(answerers[int(u)]),
                    timestamp=created + float(rng.exponential(6.0)),
                    votes=int(rng.integers(0, 6)),
                    body=answer_bodies[rng.integers(len(answer_bodies))],
                    is_question=False,
                )
            )
            next_post += 1
        requests.append(
            TrafficRequest("event", float(arrival), Thread(question, answers))
        )
    return requests
