"""Synthetic Stack Overflow forum generator.

The paper evaluates on a 30-day Stack Exchange API dump ("Python" tag,
June 3 - July 3 2018).  Without network access we substitute a seeded
generative simulator calibrated to the dataset statistics the paper
publishes (Sec. III), planting the couplings its models exploit:

* heavy-tailed user activity — roughly 40 % of answerers post >= 2
  answers (Fig. 4a);
* *more active users answer faster* (Fig. 4b) — response delays are
  log-normal with a median that decreases in user activity;
* answer propensity rises with user activity and user-question topic
  match (drives tasks a_uq and r_uq);
* answer votes depend on answerer expertise, topic match and question
  votes (the paper finds v_q the most predictive feature for v_uq) and
  are *independent of response delay* (Fig. 3: no correlation);
* post bodies are drawn from per-topic vocabularies so LDA can recover
  the planted topic structure, with word lengths around a median of
  ~300 characters and code lengths around the same median with much
  higher variance (Fig. 4e);
* answer text mixes question topics with the answerer's own interests,
  making answerers look topically more similar to askers than to the
  questions themselves (Fig. 4d);
* a sprinkle of duplicate answers and zero-delay answers so the
  Sec. III-A preprocessing has real work to do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import ForumDataset
from .models import HOURS_PER_DAY, Post, Thread

__all__ = [
    "ForumConfig",
    "SyntheticForum",
    "generate_forum",
    "draw_answer_delay",
    "draw_answer_votes",
]


def draw_answer_delay(
    median_delay: float, match: float, rng: np.random.Generator
) -> float:
    """Sample one answer delay (hours) from the generative model.

    Log-normal around the user's median, sped up by topic match — the
    exact distribution the generator uses, exposed so counterfactual
    simulations (e.g. A/B tests) stay consistent with observed data.
    """
    delay = rng.lognormal(np.log(median_delay) - 1.2 * (match - 0.3), 0.7)
    return max(delay, 1.0 / 60.0)


def draw_answer_votes(
    expertise: float,
    match: float,
    question_votes: int,
    rng: np.random.Generator,
) -> int:
    """Sample one answer's net votes from the generative model.

    Votes couple question popularity (visibility), answerer expertise
    and topic match *multiplicatively*: an expert answer on a popular
    on-topic question is seen (and upvoted) far more.  The paper finds
    v_q the most important feature for vote prediction and motivates
    nonlinear predictors; this interaction is what its neural network
    can exploit over linear baselines.  Deliberately independent of the
    delay draw (paper Fig. 3).
    """
    quality = 0.9 * expertise + 0.45 * question_votes + rng.normal(0.0, 0.5)
    visibility = 0.35 + match
    raw = visibility * quality + 0.8 * match + rng.normal(0.0, 0.5)
    # Occasional viral answers give the vote distribution the long
    # right tail seen on Stack Overflow.
    if raw > 0 and rng.uniform() < 0.04:
        raw *= rng.uniform(2.0, 8.0)
    return int(np.clip(np.round(raw), -6, 60))


@dataclass(frozen=True)
class ForumConfig:
    """Scale and shape parameters of the synthetic forum."""

    n_users: int = 2000
    n_questions: int = 3000
    n_topics: int = 8
    duration_days: float = 30.0
    mean_extra_answers: float = 0.55  # answered questions get 1 + Poisson(this)
    unanswered_fraction: float = 0.35
    words_per_topic: int = 40
    n_common_words: int = 60
    median_word_chars: float = 300.0
    median_code_chars: float = 300.0
    duplicate_answer_rate: float = 0.004
    zero_delay_rate: float = 0.002
    topic_match_weight: float = 3.0  # how strongly topic match drives answering
    activity_tail: float = 1.1  # lognormal sigma of user activity weights
    # Probability that an answer triggers a follow-up answer by another
    # user (self-excitation; 0 reproduces the paper's independent-pair
    # assumption, > 0 exercises the Hawkes extension).
    answer_excitation: float = 0.0
    # Day/night cycle of question arrivals: 0 gives the uniform arrivals
    # of the default model; values in (0, 1) modulate the arrival
    # intensity as 1 + amplitude * sin(2 pi t / 24h), matching the
    # diurnal rhythm of real forum traffic.
    diurnal_amplitude: float = 0.0
    # Month-scale platform popularity ebb/flow (the cross-platform
    # QA-trends regime): question arrival intensity is additionally
    # modulated by 1 + amplitude * sin(2 pi t / period), composing
    # multiplicatively with the diurnal cycle.  0 disables the wave and
    # keeps the arrival stream bit-identical to older versions.
    popularity_wave_amplitude: float = 0.0
    popularity_wave_period_days: float = 14.0
    # Topic drift: the dominant topic of each question is rotated by
    # ``int(rate * t / duration * n_topics) % n_topics`` positions at
    # question time t, so interest in topics migrates over the run
    # (rate = full rotations of the topic space per run).  Purely a
    # deterministic relabeling — it consumes no randomness, so rate 0
    # is bit-identical to older versions.
    topic_drift_rate: float = 0.0

    def __post_init__(self):
        if self.n_users < 10 or self.n_questions < 10:
            raise ValueError("need at least 10 users and 10 questions")
        if self.n_topics < 2:
            raise ValueError("need at least 2 topics")
        if not 0.0 <= self.unanswered_fraction < 1.0:
            raise ValueError("unanswered_fraction must be in [0, 1)")
        if not 0.0 <= self.answer_excitation < 1.0:
            raise ValueError("answer_excitation must be in [0, 1)")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.popularity_wave_amplitude < 1.0:
            raise ValueError("popularity_wave_amplitude must be in [0, 1)")
        if self.popularity_wave_period_days <= 0:
            raise ValueError("popularity_wave_period_days must be positive")
        if self.topic_drift_rate < 0:
            raise ValueError("topic_drift_rate must be non-negative")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")

    @property
    def duration_hours(self) -> float:
        return self.duration_days * HOURS_PER_DAY


@dataclass
class SyntheticForum:
    """A generated forum plus the ground truth that produced it."""

    dataset: ForumDataset
    config: ForumConfig
    user_interests: np.ndarray  # (n_users, n_topics) rows on the simplex
    user_activity: np.ndarray  # (n_users,) positive activity weights
    user_expertise: np.ndarray  # (n_users,) ~ N(0, 1)
    user_median_delay: np.ndarray  # (n_users,) hours
    question_topics: np.ndarray  # (n_questions, n_topics)


class _TextSampler:
    """Draws post bodies from per-topic word lists.

    The vocabulary is synthetic but structured: each topic owns
    ``words_per_topic`` exclusive words plus a shared pool of common
    words, so a K-topic LDA fit on the corpus recovers the planted
    topics.
    """

    def __init__(self, config: ForumConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        self.topic_words = [
            [f"topic{t}word{i}" for i in range(config.words_per_topic)]
            for t in range(config.n_topics)
        ]
        self.common_words = [f"common{i}" for i in range(config.n_common_words)]
        # Average token ~11 chars plus a space.
        self._chars_per_token = 12.0

    def body(self, topic_mixture: np.ndarray) -> str:
        """An HTML body with word text from the mixture and a code block."""
        cfg = self.config
        word_chars = self.rng.lognormal(np.log(cfg.median_word_chars), 0.35)
        code_chars = self.rng.lognormal(np.log(cfg.median_code_chars), 0.85)
        n_tokens = max(5, int(word_chars / self._chars_per_token))
        tokens = []
        topics = self.rng.choice(cfg.n_topics, size=n_tokens, p=topic_mixture)
        common = self.rng.uniform(size=n_tokens) < 0.25
        for t, is_common in zip(topics, common):
            pool = self.common_words if is_common else self.topic_words[t]
            tokens.append(pool[self.rng.integers(len(pool))])
        words = " ".join(tokens)
        code = self._code_block(int(code_chars))
        return f"<p>{words}</p><pre><code>{code}</code></pre>"

    def _code_block(self, n_chars: int) -> str:
        lines = []
        remaining = max(10, n_chars)
        i = 0
        while remaining > 0:
            line = f"x{i} = compute_{i}(data[{i}])"
            lines.append(line)
            remaining -= len(line) + 1
            i += 1
        return "\n".join(lines)


class _ForumBuilder:
    """Stateful construction of one synthetic forum."""

    def __init__(self, config: ForumConfig, seed: int):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.text = _TextSampler(config, self.rng)
        self._next_post_id = 0
        n = config.n_users
        self.activity = self.rng.lognormal(0.0, config.activity_tail, size=n)
        self.interests = self.rng.dirichlet(np.full(config.n_topics, 0.3), size=n)
        self.expertise = self.rng.normal(0.0, 1.0, size=n)
        # Fig. 4b: more active users answer faster.  Median delay spans
        # roughly 5 minutes (top answerers) to about a day; the paper sees
        # ~80 % of users with a_u >= 5 at a median under one hour.  The
        # idiosyncratic speed factor makes a user's *observed* median
        # response time (feature r-bar_u) carry signal beyond what the
        # activity count alone explains — the paper finds r-bar_u the
        # single most important feature for the timing task.
        idiosyncratic_speed = self.rng.lognormal(0.0, 0.5, size=n)
        self.median_delay = np.clip(
            2.2 * self.activity**-0.85 * idiosyncratic_speed, 0.05, 24.0
        )
        ask_propensity = self.rng.lognormal(0.0, 1.0, size=n)
        self.ask_probs = ask_propensity / ask_propensity.sum()
        self._thread_mixtures: dict[int, np.ndarray] = {}
        self._thread_askers: dict[int, int] = {}
        self._thread_question_votes: dict[int, int] = {}

    def _new_post_id(self) -> int:
        pid = self._next_post_id
        self._next_post_id += 1
        return pid

    def build(self) -> SyntheticForum:
        cfg = self.config
        n_q = cfg.n_questions
        question_times = self._question_arrival_times(n_q)
        askers = self.rng.choice(cfg.n_users, size=n_q, p=self.ask_probs)
        question_topics = np.empty((n_q, cfg.n_topics))
        threads = []
        for q in range(n_q):
            mixture = self._question_mixture(
                int(askers[q]), float(question_times[q])
            )
            question_topics[q] = mixture
            threads.append(
                self._make_thread(q, int(askers[q]), float(question_times[q]), mixture)
            )
        return SyntheticForum(
            dataset=ForumDataset(threads),
            config=cfg,
            user_interests=self.interests,
            user_activity=self.activity,
            user_expertise=self.expertise,
            user_median_delay=self.median_delay,
            question_topics=question_topics,
        )

    def _question_arrival_times(self, n_q: int) -> np.ndarray:
        """Sorted arrival times, uniform or sinusoidally modulated.

        Modulated sampling uses rejection against the product intensity
        ``(1 + A_d sin(2 pi t / 24)) * (1 + A_w sin(2 pi t / P))`` —
        the diurnal cycle times the month-scale popularity wave; exact
        and O(n) in expectation.  With both amplitudes zero the draws
        reduce to sorted uniforms, bit-identical to older versions.
        """
        cfg = self.config
        a_day = cfg.diurnal_amplitude
        a_wave = cfg.popularity_wave_amplitude
        if a_day <= 0.0 and a_wave <= 0.0:
            return np.sort(self.rng.uniform(0.0, cfg.duration_hours, size=n_q))
        period = cfg.popularity_wave_period_days * HOURS_PER_DAY
        times: list[float] = []
        bound = (1.0 + a_day) * (1.0 + a_wave)
        while len(times) < n_q:
            t = self.rng.uniform(0.0, cfg.duration_hours)
            intensity = 1.0 + a_day * np.sin(2.0 * np.pi * t / 24.0)
            if a_wave > 0.0:
                intensity *= 1.0 + a_wave * np.sin(2.0 * np.pi * t / period)
            if self.rng.uniform() * bound <= intensity:
                times.append(t)
        return np.sort(np.array(times))

    def _drift_shift(self, t: float) -> int:
        """Topic-rotation offset at forum time ``t`` (0 without drift)."""
        cfg = self.config
        if cfg.topic_drift_rate <= 0.0:
            return 0
        progress = t / cfg.duration_hours
        return int(cfg.topic_drift_rate * progress * cfg.n_topics) % cfg.n_topics

    def _question_mixture(self, asker: int, t: float) -> np.ndarray:
        """A topic mixture concentrated on one of the asker's interests.

        Under topic drift the dominant topic is rotated by the
        time-dependent offset — the same asker gravitates to different
        topics as the run progresses — without consuming randomness.
        """
        cfg = self.config
        main_topic = self.rng.choice(cfg.n_topics, p=self.interests[asker])
        main_topic = (int(main_topic) + self._drift_shift(t)) % cfg.n_topics
        mixture = 0.25 * self.rng.dirichlet(np.full(cfg.n_topics, 0.15))
        mixture[main_topic] += 0.75
        return mixture

    def _make_thread(
        self, thread_id: int, asker: int, created_at: float, mixture: np.ndarray
    ) -> Thread:
        cfg = self.config
        # Question net votes: skewed, mostly small, occasionally large.
        q_votes = int(np.round(self.rng.lognormal(0.3, 0.9))) - 1
        question = Post(
            post_id=self._new_post_id(),
            thread_id=thread_id,
            author=asker,
            timestamp=created_at,
            votes=q_votes,
            body=self.text.body(mixture),
            is_question=True,
        )
        self._thread_mixtures[thread_id] = mixture
        self._thread_askers[thread_id] = asker
        self._thread_question_votes[thread_id] = q_votes
        answers: list[Post] = []
        if self.rng.uniform() >= cfg.unanswered_fraction:
            n_answers = 1 + self.rng.poisson(cfg.mean_extra_answers)
            users, matches = self._choose_answerers(mixture, asker, n_answers)
            for user, match in zip(users, matches):
                answers.extend(
                    self._make_answers(question, mixture, int(user), float(match))
                )
            answers.extend(self._excited_answers(list(answers)))
        return Thread(question=question, answers=answers)

    def _excited_answers(self, seeds: list[Post]) -> list[Post]:
        """Follow-up answers triggered by existing ones (self-excitation).

        Each answer independently spawns at most one follow-up with
        probability ``answer_excitation``, an exponential hour-scale
        delay later, by a fresh answerer; follow-ups can cascade.  With
        the default rate of 0 this is a no-op, matching the paper's
        independent-pair process.
        """
        cfg = self.config
        if cfg.answer_excitation <= 0.0 or not seeds:
            return []
        existing = {p.author for p in seeds}
        extra: list[Post] = []
        # Follow-ups can themselves trigger follow-ups (a subcritical
        # cascade), matching the Hawkes branching structure.
        frontier = list(seeds)
        depth = 0
        while frontier and depth < 4:
            new_frontier: list[Post] = []
            for seed_post in frontier:
                post = self._one_excited_answer(seed_post, existing)
                if post is not None:
                    extra.append(post)
                    new_frontier.append(post)
            frontier = new_frontier
            depth += 1
        return extra

    def _one_excited_answer(self, seed_post: Post, existing: set[int]):
        """At most one follow-up to ``seed_post``, or None."""
        cfg = self.config
        if self.rng.uniform() >= cfg.answer_excitation:
            return None
        mixture = self._thread_mixtures[seed_post.thread_id]
        asker = self._thread_askers[seed_post.thread_id]
        q_votes = self._thread_question_votes[seed_post.thread_id]
        users, matches = self._choose_answerers(mixture, asker, n_answers=1)
        user, match = int(users[0]), float(matches[0])
        if user in existing:
            return None
        existing.add(user)
        delay = self.rng.exponential(1.0)
        votes = draw_answer_votes(
            float(self.expertise[user]), match, q_votes, self.rng
        )
        answer_mixture = 0.6 * mixture + 0.4 * self.interests[user]
        answer_mixture = answer_mixture / answer_mixture.sum()
        return Post(
            post_id=self._new_post_id(),
            thread_id=seed_post.thread_id,
            author=user,
            timestamp=seed_post.timestamp + delay,
            votes=votes,
            body=self.text.body(answer_mixture),
            is_question=False,
        )

    def _choose_answerers(
        self, mixture: np.ndarray, asker: int, n_answers: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample distinct answerers by activity and topic match."""
        cfg = self.config
        match = self.interests @ mixture  # (n_users,)
        scores = self.activity * np.exp(cfg.topic_match_weight * match)
        scores[asker] = 0.0
        probs = scores / scores.sum()
        n_answers = min(n_answers, cfg.n_users - 1)
        chosen = self.rng.choice(
            cfg.n_users, size=n_answers, replace=False, p=probs
        )
        return chosen, match[chosen]

    def _make_answers(
        self, question: Post, question_mixture: np.ndarray, user: int, match: float
    ) -> list[Post]:
        """One answer by ``user`` (rarely two, to exercise deduplication)."""
        cfg = self.config
        rng = self.rng
        delay = draw_answer_delay(float(self.median_delay[user]), match, rng)
        if rng.uniform() < cfg.zero_delay_rate:
            delay = 0.0
        votes = draw_answer_votes(
            float(self.expertise[user]), match, question.votes, rng
        )
        answer_mixture = 0.6 * question_mixture + 0.4 * self.interests[user]
        answer_mixture = answer_mixture / answer_mixture.sum()
        posts = [
            Post(
                post_id=self._new_post_id(),
                thread_id=question.thread_id,
                author=user,
                timestamp=question.timestamp + delay,
                votes=votes,
                body=self.text.body(answer_mixture),
                is_question=False,
            )
        ]
        if rng.uniform() < cfg.duplicate_answer_rate:
            posts.append(
                Post(
                    post_id=self._new_post_id(),
                    thread_id=question.thread_id,
                    author=user,
                    timestamp=question.timestamp + delay + rng.uniform(0.1, 2.0),
                    votes=max(votes - 1, -6),
                    body=self.text.body(answer_mixture),
                    is_question=False,
                )
            )
        return posts


def generate_forum(
    config: ForumConfig | None = None, seed: int = 0
) -> SyntheticForum:
    """Generate a full synthetic forum dataset.

    Deterministic given ``(config, seed)``.  The returned dataset is
    *raw*: it still contains unanswered questions, occasional duplicate
    answers and zero-delay answers, so callers should run
    ``dataset.preprocess()`` exactly as the paper does.
    """
    return _ForumBuilder(config or ForumConfig(), seed).build()
