"""Automatic repair of dataset integrity violations.

Pairs with :mod:`repro.forum.validation`: where the validator reports,
the repairer fixes — dropping offending answers (pre-question
timestamps, self-answers, duplicate post ids) and, where a question
itself is broken, the whole thread.  The result always validates clean
apart from ``empty_body`` (which featurization tolerates).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dataset import ForumDataset
from .models import Post, Thread

__all__ = ["RepairReport", "repair_dataset"]


@dataclass(frozen=True)
class RepairReport:
    """What repair removed."""

    answers_dropped_duplicate_id: int
    answers_dropped_before_question: int
    answers_dropped_self_answer: int
    threads_dropped_duplicate_question_id: int


def repair_dataset(dataset: ForumDataset) -> tuple[ForumDataset, RepairReport]:
    """Drop every structurally invalid post; returns (dataset, report).

    Repair is conservative: it never rewrites timestamps or authors,
    only removes what cannot be trusted.  Threads left without answers
    are kept (preprocessing decides what to do with them).
    """
    seen_post_ids: set[int] = set()
    threads: list[Thread] = []
    dup_answers = 0
    early_answers = 0
    self_answers = 0
    dup_questions = 0
    for thread in dataset:
        if thread.question.post_id in seen_post_ids:
            dup_questions += 1
            continue
        seen_post_ids.add(thread.question.post_id)
        kept: list[Post] = []
        for answer in thread.answers:
            if answer.post_id in seen_post_ids:
                dup_answers += 1
                continue
            if answer.timestamp < thread.created_at:
                early_answers += 1
                continue
            if answer.author == thread.asker:
                self_answers += 1
                continue
            seen_post_ids.add(answer.post_id)
            kept.append(answer)
        threads.append(Thread(question=thread.question, answers=kept))
    report = RepairReport(
        answers_dropped_duplicate_id=dup_answers,
        answers_dropped_before_question=early_answers,
        answers_dropped_self_answer=self_answers,
        threads_dropped_duplicate_question_id=dup_questions,
    )
    return ForumDataset(threads), report
