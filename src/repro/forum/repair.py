"""Automatic repair of dataset integrity violations.

Pairs with :mod:`repro.forum.validation`: where the validator reports,
the repairer fixes — dropping offending answers (pre-question
timestamps, self-answers, duplicate post ids, non-finite timestamps),
coercing non-finite vote counts to zero and, where a question itself is
broken, the whole thread.  The result always validates clean apart from
``empty_body`` (which featurization tolerates).

Duplicate resolution is **order-independent**: which occurrence of a
duplicated post id survives is decided by a deterministic key on the
posts themselves (finite timestamps beat non-finite, then earliest
timestamp, then questions beat answers, then lowest thread id), never
by the order threads happen to be iterated.  Repairing a shuffled copy
of a dataset therefore yields the same surviving posts as repairing the
sorted original, which the regression tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .dataset import ForumDataset
from .models import Post, Thread

__all__ = [
    "RepairReport",
    "repair_dataset",
    "VoteSpamWave",
    "apply_vote_spam",
    "strip_vote_spam",
]


@dataclass(frozen=True)
class VoteSpamWave:
    """One brigading wave: a flat vote boost on answers in a window.

    Membership is ``start_hour <= answer.timestamp < end_hour``, which
    depends only on the post itself, so :func:`apply_vote_spam` and
    :func:`strip_vote_spam` are exact inverses regardless of thread
    order.  Questions are never boosted — brigades pile onto answers.
    """

    start_hour: float
    end_hour: float
    boost: int

    def __post_init__(self):
        if not self.end_hour > self.start_hour:
            raise ValueError("end_hour must be after start_hour")
        if self.boost < 1:
            raise ValueError("boost must be >= 1")

    def hits(self, post: Post) -> bool:
        return (
            not post.is_question
            and self.start_hour <= post.timestamp < self.end_hour
        )


def _shift_vote_spam(
    threads: list[Thread], waves: tuple[VoteSpamWave, ...], sign: int
) -> list[Thread]:
    out: list[Thread] = []
    for thread in threads:
        answers = []
        for answer in thread.answers:
            delta = sum(w.boost for w in waves if w.hits(answer))
            if delta:
                answer = replace(answer, votes=answer.votes + sign * delta)
            answers.append(answer)
        out.append(Thread(question=thread.question, answers=answers))
    return out


def apply_vote_spam(
    threads: list[Thread], waves: tuple[VoteSpamWave, ...]
) -> list[Thread]:
    """Inflate answer votes inside each wave's window."""
    return _shift_vote_spam(list(threads), waves, +1)


def strip_vote_spam(
    dataset: ForumDataset, waves: tuple[VoteSpamWave, ...]
) -> ForumDataset:
    """Exact inverse of :func:`apply_vote_spam` on a dataset.

    Stripping the same waves that were applied recovers the original
    vote totals bit-for-bit (the conservation property the brigading
    scenario tests pin).
    """
    return ForumDataset(_shift_vote_spam(list(dataset), waves, -1))


@dataclass(frozen=True)
class RepairReport:
    """What repair removed or rewrote."""

    answers_dropped_duplicate_id: int
    answers_dropped_before_question: int
    answers_dropped_self_answer: int
    threads_dropped_duplicate_question_id: int
    answers_dropped_nonfinite_time: int = 0
    threads_dropped_nonfinite_time: int = 0
    votes_coerced: int = 0


def _occurrence_key(post: Post, in_question: bool) -> tuple:
    """Ranking key for duplicate-id resolution; smallest wins.

    Depends only on the competing posts, not on iteration order:
    finite timestamps beat non-finite, then the earliest timestamp,
    then questions beat answers (dropping a question drops its whole
    thread, so the question occurrence is the cheaper one to keep),
    then the lowest thread id as the final deterministic tiebreak.
    """
    finite = math.isfinite(post.timestamp)
    return (
        0 if finite else 1,
        post.timestamp if finite else 0.0,
        0 if in_question else 1,
        post.thread_id,
    )


def repair_dataset(dataset: ForumDataset) -> tuple[ForumDataset, RepairReport]:
    """Drop every structurally invalid post; returns (dataset, report).

    Repair is conservative: it never rewrites timestamps or authors —
    only removes what cannot be trusted and zeroes vote counts that are
    not finite numbers.  Threads left without answers are kept
    (preprocessing decides what to do with them).
    """
    # Pass 1: elect a winner for every duplicated post id.  Within one
    # thread the first occurrence wins ties (answers are stored sorted,
    # so intra-thread order is not an artifact of dataset order).
    best: dict[int, tuple] = {}
    for thread in dataset:
        for position, post in enumerate(thread.posts):
            key = _occurrence_key(post, post.is_question) + (position,)
            if post.post_id not in best or key < best[post.post_id]:
                best[post.post_id] = key

    def wins(post: Post, position: int) -> bool:
        return best[post.post_id] == (
            _occurrence_key(post, post.is_question) + (position,)
        )

    threads: list[Thread] = []
    dup_answers = 0
    early_answers = 0
    self_answers = 0
    dup_questions = 0
    nan_answers = 0
    nan_questions = 0
    votes_coerced = 0
    for thread in dataset:
        question = thread.question
        if not math.isfinite(question.timestamp):
            nan_questions += 1
            continue
        if not wins(question, 0):
            dup_questions += 1
            continue
        if not math.isfinite(float(question.votes)):
            question = replace(question, votes=0)
            votes_coerced += 1
        kept: list[Post] = []
        for position, answer in enumerate(thread.answers, start=1):
            if not math.isfinite(answer.timestamp):
                nan_answers += 1
                continue
            if not wins(answer, position):
                dup_answers += 1
                continue
            if answer.timestamp < question.timestamp:
                early_answers += 1
                continue
            if answer.author == thread.asker:
                self_answers += 1
                continue
            if not math.isfinite(float(answer.votes)):
                answer = replace(answer, votes=0)
                votes_coerced += 1
            kept.append(answer)
        threads.append(Thread(question=question, answers=kept))
    report = RepairReport(
        answers_dropped_duplicate_id=dup_answers,
        answers_dropped_before_question=early_answers,
        answers_dropped_self_answer=self_answers,
        threads_dropped_duplicate_question_id=dup_questions,
        answers_dropped_nonfinite_time=nan_answers,
        threads_dropped_nonfinite_time=nan_questions,
        votes_coerced=votes_coerced,
    )
    return ForumDataset(threads), report
