"""Forum dataset container and the paper's preprocessing pipeline.

Sec. III-A preprocessing steps, in order:

1. drop questions without at least one answer;
2. where a user answered the same question more than once, keep the
   answer with the highest score;
3. drop answers posted at (or before) the question's own timestamp.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from .models import HOURS_PER_DAY, Post, Thread

__all__ = [
    "ForumDataset",
    "AnswerRecord",
    "PreprocessReport",
    "fingerprint_threads",
]


def fingerprint_threads(threads: Iterable[Thread]) -> str:
    """Stable digest of a thread collection's (thread_id, created_at) pairs.

    Order-independent (pairs are hashed in sorted order), so a dataset
    slice and an incrementally maintained state holding the same threads
    produce the same fingerprint.  Used by predictor persistence to
    reject a reload against the wrong feature window.
    """
    digest = hashlib.sha256()
    for tid, created in sorted((t.thread_id, t.created_at) for t in threads):
        digest.update(f"{tid}:{created!r};".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class AnswerRecord:
    """One observed (user, question) answer event — a positive a_uq pair."""

    user: int
    thread_id: int
    votes: int
    response_time: float  # hours after the question, the paper's r_uq
    timestamp: float


@dataclass(frozen=True)
class PreprocessReport:
    """What Sec. III-A preprocessing removed."""

    questions_dropped_unanswered: int
    duplicate_answers_removed: int
    zero_delay_answers_removed: int


class ForumDataset:
    """An ordered collection of threads with question-level indexing."""

    def __init__(self, threads: Iterable[Thread]):
        self.threads: list[Thread] = sorted(threads, key=lambda t: t.created_at)
        self._by_id = {t.thread_id: t for t in self.threads}
        if len(self._by_id) != len(self.threads):
            raise ValueError("duplicate thread ids")

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.threads)

    def __iter__(self) -> Iterator[Thread]:
        return iter(self.threads)

    def thread(self, thread_id: int) -> Thread:
        return self._by_id[thread_id]

    def __contains__(self, thread_id: int) -> bool:
        return thread_id in self._by_id

    @property
    def askers(self) -> set[int]:
        return {t.asker for t in self.threads}

    @property
    def answerers(self) -> set[int]:
        return {u for t in self.threads for u in t.answerers}

    @property
    def users(self) -> set[int]:
        return self.askers | self.answerers

    @property
    def num_answers(self) -> int:
        return sum(len(t.answers) for t in self.threads)

    @property
    def duration_hours(self) -> float:
        """Time of the last post in the dataset (paper's horizon T)."""
        last = 0.0
        for t in self.threads:
            last = max(last, t.created_at)
            if t.answers:
                last = max(last, t.answers[-1].timestamp)
        return last

    def fingerprint(self) -> str:
        """Digest of (thread_id, created_at) pairs; see ``fingerprint_threads``."""
        return fingerprint_threads(self.threads)

    # -- preprocessing (Sec. III-A) -------------------------------------------

    def preprocess(self) -> tuple["ForumDataset", PreprocessReport]:
        """Apply the paper's filtering; returns a new dataset and a report."""
        duplicate_removed = 0
        zero_delay_removed = 0
        kept_threads: list[Thread] = []
        unanswered = 0
        for t in self.threads:
            # Keep one answer per user: the highest-voted (ties: earliest).
            best: dict[int, Post] = {}
            for a in t.answers:
                cur = best.get(a.author)
                if cur is None:
                    best[a.author] = a
                else:
                    duplicate_removed += 1
                    if (a.votes, -a.timestamp) > (cur.votes, -cur.timestamp):
                        best[a.author] = a
            answers = []
            for a in best.values():
                if a.timestamp <= t.created_at:
                    zero_delay_removed += 1
                else:
                    answers.append(a)
            if not answers:
                unanswered += 1
                continue
            kept_threads.append(Thread(question=t.question, answers=answers))
        report = PreprocessReport(
            questions_dropped_unanswered=unanswered,
            duplicate_answers_removed=duplicate_removed,
            zero_delay_answers_removed=zero_delay_removed,
        )
        return ForumDataset(kept_threads), report

    # -- derived views ---------------------------------------------------------

    def answer_records(self) -> list[AnswerRecord]:
        """All positive (u, q) pairs with votes and response times."""
        records = []
        for t in self.threads:
            for a in t.answers:
                records.append(
                    AnswerRecord(
                        user=a.author,
                        thread_id=t.thread_id,
                        votes=a.votes,
                        response_time=a.timestamp - t.created_at,
                        timestamp=a.timestamp,
                    )
                )
        return records

    def participant_tuples(self) -> list[tuple[int, list[int]]]:
        """(asker, answerers) per thread, for the SLN graph builders."""
        return [(t.asker, t.answerers) for t in self.threads]

    def answer_matrix_density(self) -> float:
        """Fraction of 1s in the answering matrix A over answerers x questions.

        The paper reports 0.03% for its Stack Overflow sample.
        """
        n_answerers = len(self.answerers)
        n_questions = len(self.threads)
        if n_answerers == 0 or n_questions == 0:
            return 0.0
        positives = sum(len(t.answerers) for t in self.threads)
        return positives / (n_answerers * n_questions)

    def answers_per_user(self) -> Counter:
        """a_u counts over answerers."""
        counts: Counter[int] = Counter()
        for t in self.threads:
            for u in t.answerers:
                counts[u] += 1
        return counts

    # -- partitioning ------------------------------------------------------------

    def threads_in_window(self, start_hour: float, end_hour: float) -> "ForumDataset":
        """Threads whose *question* was created in [start_hour, end_hour)."""
        if end_hour <= start_hour:
            raise ValueError("end_hour must exceed start_hour")
        return ForumDataset(
            t for t in self.threads if start_hour <= t.created_at < end_hour
        )

    def threads_in_days(self, first_day: int, last_day: int) -> "ForumDataset":
        """Threads created in days ``first_day..last_day`` inclusive (1-based).

        Matches the paper's D_i partitioning in Sec. IV-D.
        """
        if first_day < 1 or last_day < first_day:
            raise ValueError("need 1 <= first_day <= last_day")
        return self.threads_in_window(
            (first_day - 1) * HOURS_PER_DAY, last_day * HOURS_PER_DAY
        )

    def threads_before(self, thread_id: int) -> "ForumDataset":
        """All threads created at or before the given thread (chronological F(q))."""
        anchor = self._by_id[thread_id].created_at
        return ForumDataset(t for t in self.threads if t.created_at <= anchor)

    def subset(self, thread_ids: Iterable[int]) -> "ForumDataset":
        """Dataset restricted to the given thread ids."""
        ids = set(thread_ids)
        missing = ids - set(self._by_id)
        if missing:
            raise KeyError(f"unknown thread ids: {sorted(missing)[:5]}")
        return ForumDataset(self._by_id[i] for i in ids)

    def sample_negative_pairs(
        self, n: int, seed: int | np.random.Generator = 0
    ) -> list[tuple[int, int]]:
        """(user, thread_id) pairs with a_uq = 0, spread across questions.

        Follows Sec. IV-A: negative samples are drawn equally across
        questions, pairing each sampled question with a random user (from
        the full user population, most of whom never answer anything)
        who did not answer it.
        """
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        user_pool = sorted(self.users)
        if not user_pool or not self.threads:
            raise ValueError("dataset has no users or no threads")
        pairs: list[tuple[int, int]] = []
        thread_order = rng.permutation(len(self.threads))
        i = 0
        attempts = 0
        max_attempts = 50 * n + 100
        while len(pairs) < n and attempts < max_attempts:
            attempts += 1
            t = self.threads[thread_order[i % len(self.threads)]]
            i += 1
            user = int(user_pool[rng.integers(len(user_pool))])
            if user == t.asker or user in t.answerers:
                continue
            pairs.append((user, t.thread_id))
        if len(pairs) < n:
            raise RuntimeError("could not sample enough negative pairs")
        return pairs
