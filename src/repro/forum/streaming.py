"""Streaming million-user forum generation in bounded memory.

:func:`generate_forum` materializes every post as a Python object —
fine at the paper's scale (~3k questions), hopeless at a million users.
This module re-expresses the same generative model as vectorized chunk
production: questions are generated in chronological time slices, each
slice yields plain numpy arrays (a :class:`StreamChunk`), and the
caller appends them straight into columnar
:class:`~repro.core.columnar.AnswerLog` segments.  No chunk ever holds
more than ``chunk_questions`` threads, so peak memory is bounded by the
per-user ground-truth arrays (O(n_users · n_topics) float32) plus one
chunk — independent of the total number of posts.

Statistical fidelity, not bit-fidelity: the streamed path draws from
the *same distributions* as :func:`generate_forum` (activity tails,
topic-match-driven answering, the delay and vote formulas of
:func:`draw_answer_delay` / :func:`draw_answer_votes`) but vectorizes
the sampling, so a given seed produces a different — equally valid —
forum than the object path.  The one structural substitution is the
answerer sampler: the object path scores all ``n_users`` per question
(O(n_users · n_questions), the scale bottleneck); here we sample a
topic from the question mixture and then a user from per-topic
activity-tilted cumulative weights via ``searchsorted`` —
O(log n_users) per answer with the same activity x topic-match
coupling.

Post bodies are never built.  Word/code lengths are drawn from the same
log-normals and stored as float32 columns; ground-truth topic mixtures
ride along as float32 rows so downstream consumers need no LDA fit to
exercise topic-dependent paths at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .. import perf
from ..core.columnar import AnswerLog, EventStore
from ..core.dtypes import ID_DTYPE, TIME_DTYPE, VALUE_DTYPE
from .generator import ForumConfig

__all__ = [
    "StreamChunk",
    "UserGroundTruth",
    "sample_users",
    "stream_forum_chunks",
    "ScaleIngestReport",
    "ingest_to_shards",
]


@dataclass(frozen=True)
class UserGroundTruth:
    """Per-user latent variables, sampled once and shared by all chunks.

    The only O(n_users) state of the streamed generator.  At one million
    users and 8 topics this is ~100 MB (dominated by ``interests`` and
    the per-topic answerer weights), which is the bounded-memory floor.
    """

    activity: np.ndarray  # (U,) float32 lognormal activity weight
    interests: np.ndarray  # (U, K) float32 dirichlet topic interests
    expertise: np.ndarray  # (U,) float32 N(0, 1)
    median_delay: np.ndarray  # (U,) float32 hours
    ask_cdf: np.ndarray  # (U,) float64 cumulative asking propensity
    topic_cdf: np.ndarray  # (K, U) float64 per-topic answerer weight cumsums

    @property
    def n_users(self) -> int:
        return self.activity.shape[0]

    @property
    def n_topics(self) -> int:
        return self.interests.shape[1]


def sample_users(config: ForumConfig, rng: np.random.Generator) -> UserGroundTruth:
    """Draw the per-user latents of the generative model, vectorized.

    Mirrors the per-user draws of :func:`generate_forum`: log-normal
    activity with ``activity_tail`` sigma, Dirichlet(0.3) interests,
    standard-normal expertise, and the activity-coupled median delay
    ``clip(2.2 * activity**-0.85 * lognormal(0, 0.5), 0.05, 24)`` that
    plants "more active users answer faster" (paper Fig. 4b).

    ``topic_cdf[k]`` is the cumulative distribution over users for
    answers whose sampled topic is ``k``: weight proportional to
    ``activity * exp(topic_match_weight * interests[:, k])`` — the same
    activity x match tilt the object generator applies per question,
    collapsed onto the question's dominant sampled topic.
    """
    n, k = config.n_users, config.n_topics
    activity = rng.lognormal(0.0, config.activity_tail, size=n)
    interests = rng.dirichlet(np.full(k, 0.3), size=n)
    expertise = rng.normal(0.0, 1.0, size=n)
    idiosyncratic = rng.lognormal(0.0, 0.5, size=n)
    median_delay = np.clip(2.2 * activity**-0.85 * idiosyncratic, 0.05, 24.0)
    ask = rng.lognormal(0.0, 1.0, size=n)
    ask_cdf = np.cumsum(ask / ask.sum())
    # (K, U): per-topic answerer weights.  float64 cumsums keep the
    # searchsorted inversion exact; the tilt itself fits comfortably.
    tilt = activity[None, :] * np.exp(config.topic_match_weight * interests.T)
    topic_cdf = np.cumsum(tilt / tilt.sum(axis=1, keepdims=True), axis=1)
    return UserGroundTruth(
        activity=activity.astype(VALUE_DTYPE),
        interests=interests.astype(VALUE_DTYPE),
        expertise=expertise.astype(VALUE_DTYPE),
        median_delay=median_delay.astype(VALUE_DTYPE),
        ask_cdf=ask_cdf,
        topic_cdf=topic_cdf,
    )


@dataclass
class StreamChunk:
    """One chronological slice of generated forum activity, as arrays.

    Questions are sorted by ``q_created``.  Answer rows are grouped by
    question in question order (``a_thread`` is non-decreasing within
    the chunk), which is exactly the layout
    :meth:`~repro.core.columnar.AnswerLog.append_block` wants.
    """

    t0: float
    t1: float
    # -- questions ---------------------------------------------------------
    q_id: np.ndarray  # (Q,) int32 thread ids, globally increasing
    q_asker: np.ndarray  # (Q,) int32
    q_created: np.ndarray  # (Q,) float64 hours, sorted ascending
    q_votes: np.ndarray  # (Q,) float32
    q_word_chars: np.ndarray  # (Q,) float32
    q_code_chars: np.ndarray  # (Q,) float32
    q_topics: np.ndarray  # (Q, K) float32 ground-truth mixtures
    # -- answers -----------------------------------------------------------
    a_thread: np.ndarray  # (A,) int32, grouped by question
    a_author: np.ndarray  # (A,) int32
    a_timestamp: np.ndarray  # (A,) float64 q_created + delay
    a_delay: np.ndarray  # (A,) float64 hours
    a_votes: np.ndarray  # (A,) float32
    a_topics: np.ndarray  # (A, K) float32 answer mixtures

    @property
    def n_questions(self) -> int:
        return self.q_id.shape[0]

    @property
    def n_answers(self) -> int:
        return self.a_thread.shape[0]


def _row_categorical(
    probs: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """One categorical draw per row of a (N, K) probability matrix."""
    cdf = np.cumsum(probs, axis=1)
    u = rng.uniform(size=(probs.shape[0], 1)) * cdf[:, -1:]
    return (u > cdf).sum(axis=1).astype(np.int64)


def _question_mixtures(
    askers: np.ndarray,
    users: UserGroundTruth,
    rng: np.random.Generator,
    drift_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized :func:`generate_forum` question-topic construction.

    Main topic ~ the asker's interests; mixture = 0.75 one-hot main
    topic + 0.25 Dirichlet(0.15) noise, matching ``_question_mixture``.
    ``drift_shift`` (per-question integer topic rotations, the streamed
    analogue of ``ForumConfig.topic_drift_rate``) relabels the dominant
    topic without consuming randomness.
    """
    k = users.n_topics
    main = _row_categorical(
        users.interests[askers].astype(np.float64), rng
    )
    if drift_shift is not None:
        main = (main + drift_shift) % k
    mixtures = 0.25 * rng.dirichlet(np.full(k, 0.15), size=askers.shape[0])
    mixtures[np.arange(askers.shape[0]), main] += 0.75
    return mixtures


def _sample_answerers(
    mixtures: np.ndarray,
    askers_rep: np.ndarray,
    users: UserGroundTruth,
    rng: np.random.Generator,
) -> np.ndarray:
    """Two-stage answerer draw: topic ~ question mixture, user ~ topic CDF.

    Asker collisions are resampled once from the same topic; the rare
    second collision survives and is dropped by the caller — at forum
    scale the asker holds a vanishing fraction of any topic's mass.
    """
    topics = _row_categorical(mixtures, rng)
    u = rng.uniform(size=topics.shape[0])
    # searchsorted against each answer's own topic row: gather the rows
    # and invert per-row.  (K, U) rows are contiguous, so the gather is
    # a stride trick away from free for the handful of topics involved.
    authors = np.empty(topics.shape[0], dtype=np.int64)
    for k in np.unique(topics):
        sel = topics == k
        authors[sel] = np.searchsorted(users.topic_cdf[k], u[sel])
    np.clip(authors, 0, users.n_users - 1, out=authors)
    collide = authors == askers_rep
    if collide.any():
        u2 = rng.uniform(size=int(collide.sum()))
        for k in np.unique(topics[collide]):
            sel = collide & (topics == k)
            authors[sel] = np.searchsorted(
                users.topic_cdf[k], u2[: int(sel.sum())]
            )
            u2 = u2[int(sel.sum()):]
        np.clip(authors, 0, users.n_users - 1, out=authors)
    return authors


def _chunk_probabilities(config: ForumConfig, edges: np.ndarray) -> np.ndarray:
    """Per-chunk question mass under the popularity wave.

    Without a wave every chunk carries equal mass (the exact
    ``np.full`` array older versions passed to the multinomial, so
    streams stay bit-identical).  With a wave the mass of chunk
    ``[a, b)`` is the closed-form integral of ``1 + A sin(2 pi t / P)``
    over the slice, so month-scale ebb/flow shows up as chunk-level
    volume modulation (within-chunk arrivals stay uniform — the wave is
    resolved at chunk granularity on the streamed path).
    """
    n_chunks = edges.shape[0] - 1
    amp = config.popularity_wave_amplitude
    if amp <= 0.0:
        return np.full(n_chunks, 1.0 / n_chunks)
    omega = 2.0 * np.pi / (config.popularity_wave_period_days * 24.0)
    mass = np.diff(edges) + (amp / omega) * (
        np.cos(omega * edges[:-1]) - np.cos(omega * edges[1:])
    )
    np.maximum(mass, 0.0, out=mass)
    return mass / mass.sum()


def stream_forum_chunks(
    config: ForumConfig,
    *,
    seed: int = 0,
    chunk_questions: int = 50_000,
) -> Iterator[StreamChunk]:
    """Yield the forum as chronological :class:`StreamChunk` slices.

    Question arrival times are the order statistics of uniforms over
    ``duration_hours``; we realize them incrementally by drawing the
    per-chunk counts from one multinomial over equal time slices and
    sorting uniforms within each slice — distributionally identical to
    sorting all ``n_questions`` arrivals up front, without ever holding
    them all.  ``popularity_wave_amplitude`` tilts the multinomial's
    per-chunk mass (see :func:`_chunk_probabilities`) and
    ``topic_drift_rate`` rotates dominant topics with question time,
    mirroring the scenario knobs of the object-path generator.
    """
    rng = np.random.default_rng(seed)
    users = sample_users(config, rng)
    duration = config.duration_days * 24.0
    n_chunks = max(1, -(-config.n_questions // chunk_questions))
    edges = np.linspace(0.0, duration, n_chunks + 1)
    counts = rng.multinomial(
        config.n_questions, _chunk_probabilities(config, edges)
    )
    next_qid = 0
    k = config.n_topics
    for c in range(n_chunks):
        nq = int(counts[c])
        if nq == 0:
            continue
        t0, t1 = float(edges[c]), float(edges[c + 1])
        created = np.sort(rng.uniform(t0, t1, size=nq))
        askers = np.searchsorted(users.ask_cdf, rng.uniform(size=nq))
        np.clip(askers, 0, users.n_users - 1, out=askers)
        drift = None
        if config.topic_drift_rate > 0.0:
            drift = (
                config.topic_drift_rate * (created / duration) * k
            ).astype(np.int64) % k
        mixtures = _question_mixtures(askers, users, rng, drift)
        q_votes = np.round(rng.lognormal(0.3, 0.9, size=nq)) - 1.0

        answered = rng.uniform(size=nq) >= config.unanswered_fraction
        n_answers = np.where(
            answered, 1 + rng.poisson(config.mean_extra_answers, size=nq), 0
        )
        rep = np.repeat(np.arange(nq), n_answers)  # answer -> question row

        authors = _sample_answerers(
            mixtures[rep], askers[rep], users, rng
        )
        keep = authors != askers[rep]
        rep, authors = rep[keep], authors[keep]

        match = np.einsum(
            "ij,ij->i", users.interests[authors].astype(np.float64), mixtures[rep]
        )
        # draw_answer_delay, vectorized: lognormal around the user's
        # median, sped up by match, floored at one minute.
        delay = np.exp(
            np.log(users.median_delay[authors].astype(np.float64))
            - 1.2 * (match - 0.3)
            + 0.7 * rng.normal(size=authors.shape[0])
        )
        np.maximum(delay, 1.0 / 60.0, out=delay)
        if config.zero_delay_rate > 0.0:
            delay[rng.uniform(size=delay.shape[0]) < config.zero_delay_rate] = 0.0

        # draw_answer_votes, vectorized, including the 4% viral tail.
        quality = (
            0.9 * users.expertise[authors].astype(np.float64)
            + 0.45 * q_votes[rep]
            + rng.normal(0.0, 0.5, size=authors.shape[0])
        )
        raw = (0.35 + match) * quality + 0.8 * match + rng.normal(
            0.0, 0.5, size=authors.shape[0]
        )
        viral = (raw > 0) & (rng.uniform(size=raw.shape[0]) < 0.04)
        raw[viral] *= rng.uniform(2.0, 8.0, size=int(viral.sum()))
        a_votes = np.clip(np.round(raw), -6, 60)

        a_topics = (
            0.6 * mixtures[rep] + 0.4 * users.interests[authors].astype(np.float64)
        )
        a_topics /= a_topics.sum(axis=1, keepdims=True)

        yield StreamChunk(
            t0=t0,
            t1=t1,
            q_id=(next_qid + np.arange(nq)).astype(ID_DTYPE),
            q_asker=askers.astype(ID_DTYPE),
            q_created=created.astype(TIME_DTYPE),
            q_votes=q_votes.astype(VALUE_DTYPE),
            q_word_chars=rng.lognormal(
                np.log(config.median_word_chars), 0.35, size=nq
            ).astype(VALUE_DTYPE),
            q_code_chars=rng.lognormal(
                np.log(config.median_code_chars), 0.85, size=nq
            ).astype(VALUE_DTYPE),
            q_topics=mixtures.astype(VALUE_DTYPE),
            a_thread=(next_qid + rep).astype(ID_DTYPE),
            a_author=authors.astype(ID_DTYPE),
            a_timestamp=(created[rep] + delay).astype(TIME_DTYPE),
            a_delay=delay.astype(TIME_DTYPE),
            a_votes=a_votes.astype(VALUE_DTYPE),
            a_topics=a_topics.astype(VALUE_DTYPE),
        )
        next_qid += nq


@dataclass
class ScaleIngestReport:
    """What a streamed ingest produced, for benchmarks and the CLI."""

    n_users: int
    n_questions: int = 0
    n_answers: int = 0
    n_active_users: int = 0
    n_chunks: int = 0
    question_bytes: int = 0
    answer_bytes: int = 0
    peak_rss_bytes: int = 0
    answers_per_shard: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "n_users": self.n_users,
            "n_questions": self.n_questions,
            "n_answers": self.n_answers,
            "n_active_users": self.n_active_users,
            "n_chunks": self.n_chunks,
            "question_bytes": self.question_bytes,
            "answer_bytes": self.answer_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
            "answers_per_shard": list(self.answers_per_shard),
        }


def ingest_to_shards(
    config: ForumConfig,
    *,
    seed: int = 0,
    n_shards: int = 1,
    chunk_questions: int = 50_000,
    topic_dtype=VALUE_DTYPE,
) -> tuple[list[AnswerLog], EventStore, ScaleIngestReport]:
    """Stream a forum straight into per-shard columnar stores.

    Answers partition by ``author % n_shards`` (the sharded state
    engine's user partition); the mask selection preserves chunk order,
    so each shard's log stays chronological per user.  Questions land in
    one shared :class:`EventStore` — they are broadcast-read metadata in
    the sharded engine, not per-shard state.

    Returns the shard logs, the question store, and a report with row
    counts, columnar footprints and the process peak RSS (gauged via
    :func:`repro.perf.record_peak_rss` under ``scale.``).
    """
    k = config.n_topics
    logs = [
        AnswerLog(k, topic_dtype=topic_dtype) for _ in range(n_shards)
    ]
    questions = EventStore(
        {
            "thread_id": ID_DTYPE,
            "asker": ID_DTYPE,
            "created_at": TIME_DTYPE,
            "votes": VALUE_DTYPE,
            "word_chars": VALUE_DTYPE,
            "code_chars": VALUE_DTYPE,
            "topics": (VALUE_DTYPE, k),
        }
    )
    report = ScaleIngestReport(n_users=config.n_users)
    seen_authors: set[int] = set()
    with perf.timer("scale.ingest"):
        for chunk in stream_forum_chunks(
            config, seed=seed, chunk_questions=chunk_questions
        ):
            questions.append(
                thread_id=chunk.q_id,
                asker=chunk.q_asker,
                created_at=chunk.q_created,
                votes=chunk.q_votes,
                word_chars=chunk.q_word_chars,
                code_chars=chunk.q_code_chars,
                topics=chunk.q_topics,
            )
            shard_of = chunk.a_author % n_shards
            for shard, log in enumerate(logs):
                sel = shard_of == shard
                if not sel.any():
                    continue
                log.append_block(
                    chunk.a_author[sel],
                    chunk.a_thread[sel],
                    chunk.a_votes[sel],
                    chunk.a_timestamp[sel],
                    chunk.a_delay[sel],
                    chunk.q_topics[chunk.a_thread[sel] - chunk.q_id[0]],
                    chunk.a_topics[sel],
                )
            seen_authors.update(np.unique(chunk.a_author).tolist())
            report.n_questions += chunk.n_questions
            report.n_answers += chunk.n_answers
            report.n_chunks += 1
            perf.record_peak_rss("scale")
    report.n_active_users = len(seen_authors)
    report.question_bytes = questions.nbytes
    report.answer_bytes = sum(log.nbytes for log in logs)
    report.answers_per_shard = [log.n_rows for log in logs]
    report.peak_rss_bytes = perf.peak_rss_bytes()
    perf.incr("scale.ingests")
    return logs, questions, report
