"""Dataset persistence: JSON-lines serialization of forum datasets.

One JSON object per thread, stable across versions, so generated
datasets (or datasets converted from real dumps) can be stored and
reloaded without re-running the generator.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO

from .dataset import ForumDataset
from .models import Post, Thread

__all__ = ["save_dataset", "load_dataset", "thread_to_dict", "thread_from_dict"]

_FORMAT_VERSION = 1


def post_to_dict(post: Post) -> dict:
    """Plain-dict form of a post."""
    return {
        "post_id": post.post_id,
        "thread_id": post.thread_id,
        "author": post.author,
        "timestamp": post.timestamp,
        "votes": post.votes,
        "body": post.body,
        "is_question": post.is_question,
    }


def post_from_dict(data: dict) -> Post:
    """Rebuild a post; raises ``KeyError``/``ValueError`` on bad input."""
    return Post(
        post_id=int(data["post_id"]),
        thread_id=int(data["thread_id"]),
        author=int(data["author"]),
        timestamp=float(data["timestamp"]),
        votes=int(data["votes"]),
        body=str(data["body"]),
        is_question=bool(data["is_question"]),
    )


def thread_to_dict(thread: Thread) -> dict:
    """Plain-dict form of a thread."""
    return {
        "version": _FORMAT_VERSION,
        "question": post_to_dict(thread.question),
        "answers": [post_to_dict(a) for a in thread.answers],
    }


def thread_from_dict(data: dict) -> Thread:
    """Rebuild a thread from its dict form."""
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported thread format version {version}")
    return Thread(
        question=post_from_dict(data["question"]),
        answers=[post_from_dict(a) for a in data.get("answers", [])],
    )


def _open_for_write(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_dataset(dataset: ForumDataset, path: str | Path) -> None:
    """Write a dataset as JSON lines (gzipped when the path ends in .gz)."""
    path = Path(path)
    with _open_for_write(path) as fh:
        for thread in dataset:
            fh.write(json.dumps(thread_to_dict(thread)) + "\n")


def load_dataset(path: str | Path) -> ForumDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    threads = []
    with _open_for_read(path) as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                threads.append(thread_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed thread record: {exc}"
                ) from exc
    return ForumDataset(threads)
