"""Descriptive analytics over a forum dataset (paper Sec. III, Figs. 2-4).

These functions regenerate the quantities behind the paper's descriptive
figures: graph degree statistics (Fig. 2), the votes-versus-response-time
relationship (Fig. 3) and the CDFs of selected features (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs import build_dense_graph, build_qa_graph
from ..ml.metrics import pearson_correlation, spearman_correlation
from .dataset import ForumDataset

__all__ = [
    "DatasetSummary",
    "GraphSummary",
    "ecdf",
    "summarize_dataset",
    "summarize_graphs",
    "vote_time_correlation",
    "median_response_time_by_activity",
    "answer_activity_cdf",
]


@dataclass(frozen=True)
class DatasetSummary:
    """Headline counts matching paper Sec. III-A."""

    n_questions: int
    n_answers: int
    n_askers: int
    n_answerers: int
    n_users: int
    answer_matrix_density: float


@dataclass(frozen=True)
class GraphSummary:
    """Fig. 2 statistics for one SLN graph."""

    n_nodes: int
    n_edges: int
    average_degree: float
    n_components: int
    largest_component_fraction: float


def summarize_dataset(dataset: ForumDataset) -> DatasetSummary:
    """Count users, posts and the answering-matrix density."""
    return DatasetSummary(
        n_questions=len(dataset),
        n_answers=dataset.num_answers,
        n_askers=len(dataset.askers),
        n_answerers=len(dataset.answerers),
        n_users=len(dataset.users),
        answer_matrix_density=dataset.answer_matrix_density(),
    )


def summarize_graphs(dataset: ForumDataset) -> dict[str, GraphSummary]:
    """Build G_QA and G_D over the dataset and summarize both (Fig. 2)."""
    tuples = dataset.participant_tuples()
    out = {}
    for name, graph in (
        ("qa", build_qa_graph(tuples)),
        ("dense", build_dense_graph(tuples)),
    ):
        components = graph.connected_components()
        out[name] = GraphSummary(
            n_nodes=graph.num_nodes,
            n_edges=graph.num_edges,
            average_degree=graph.average_degree(),
            n_components=len(components),
            largest_component_fraction=(
                len(components[0]) / graph.num_nodes if components else 0.0
            ),
        )
    return out


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns sorted values and cumulative probabilities."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("ecdf of empty data is undefined")
    x = np.sort(values)
    y = np.arange(1, len(x) + 1) / len(x)
    return x, y


def vote_time_correlation(dataset: ForumDataset) -> dict[str, float]:
    """Correlation between answer votes and response time (Fig. 3).

    The paper's key observation: these are *uncorrelated*, so quality
    and timing are genuinely separate prediction targets.
    """
    records = dataset.answer_records()
    if len(records) < 2:
        raise ValueError("need at least 2 answers")
    votes = np.array([r.votes for r in records], dtype=float)
    times = np.array([r.response_time for r in records], dtype=float)
    return {
        "pearson": pearson_correlation(votes, times),
        "spearman": spearman_correlation(votes, times),
        "n_pairs": float(len(records)),
    }


def answer_activity_cdf(dataset: ForumDataset) -> tuple[np.ndarray, np.ndarray]:
    """CDF of answers-per-user a_u (Fig. 4a)."""
    counts = dataset.answers_per_user()
    if not counts:
        raise ValueError("dataset has no answers")
    return ecdf(np.array(list(counts.values()), dtype=float))


def median_response_time_by_activity(
    dataset: ForumDataset, activity_thresholds: tuple[int, ...] = (1, 2, 3, 5)
) -> dict[int, np.ndarray]:
    """Per-user median response times grouped by activity level (Fig. 4b).

    For each threshold ``a`` returns the array of median response times of
    users with at least ``a`` answers.
    """
    by_user: dict[int, list[float]] = {}
    for record in dataset.answer_records():
        by_user.setdefault(record.user, []).append(record.response_time)
    medians = {u: float(np.median(ts)) for u, ts in by_user.items()}
    counts = {u: len(ts) for u, ts in by_user.items()}
    out = {}
    for threshold in activity_thresholds:
        vals = [m for u, m in medians.items() if counts[u] >= threshold]
        out[threshold] = np.array(vals)
    return out
