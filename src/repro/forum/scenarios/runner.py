"""Drive every scenario preset through the full stack and report.

The :class:`ScenarioMatrixRunner` runs each preset twice:

* a **replay leg** — the preset's dataset through
  :class:`~repro.core.online.OnlineRecommendationLoop` on the hardened
  path (StreamGuard + recovery) with the preset's fault plan, producing
  ranking accuracy, refit counts and a
  :class:`~repro.core.resilience.DegradationReport`;
* a **serving leg** — a seeded traffic schedule through the async
  :class:`~repro.core.serving.service.RecommendationService` under the
  virtual clock with the preset's admission bounds, producing latency
  percentiles and shed counts.

Accuracy is reported as-is *and* as a delta against the ``baseline``
preset at the same seed/scale, so a scenario's effect is separated from
the base forum's difficulty.  :func:`scenario_digest` collapses a
replay report into one sha256 hex string over every routing decision
and degradation record — the quantity the golden-replay regression
tests pin per preset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ...core.online import OnlineRecommendationLoop
from ...core.pipeline import PredictorConfig
from ...core.resilience import ResilienceConfig
from ...core.retrieval import RetrievalConfig
from ...core.serving.clock import VirtualClock
from ...core.serving.harness import run_load
from ...core.serving.service import (
    OnlineConfig,
    OnlineReport,
    RecommendationService,
    ServiceConfig,
    ServingCore,
)
from ..traffic import generate_traffic
from .presets import ScenarioData, build_scenario, list_scenarios

__all__ = [
    "SCENARIO_PREDICTOR",
    "SCENARIO_ONLINE",
    "SCENARIO_ENGINES",
    "ScenarioReport",
    "scenario_digest",
    "ScenarioMatrixRunner",
]

# Matrix-sized model/loop settings: the full preset grid has to finish
# in a CI lane, so topics and epochs are trimmed the same way the
# serving test-suite trims them.
SCENARIO_PREDICTOR = PredictorConfig(
    n_topics=2, vote_epochs=30, timing_epochs=30, betweenness_sample_size=50
)
SCENARIO_ONLINE = OnlineConfig(
    refit_interval_hours=96.0, window_hours=360.0, warmup_hours=96.0
)

# The config axis of the preset x config matrix: the same scenario
# stream replayed under different routing-engine configurations.  The
# primary ("dense") engine is what the golden digests pin; extra
# entries replay the same dataset through alternative engines — today
# that is the two-stage retrieve-then-rank path.
SCENARIO_ENGINES: dict[str, OnlineConfig] = {
    "two_stage": OnlineConfig(
        refit_interval_hours=96.0,
        window_hours=360.0,
        warmup_hours=96.0,
        retrieval=RetrievalConfig(),
    ),
}


def scenario_digest(report: OnlineReport) -> str:
    """One hex digest over every decision a replay made.

    Covers the counters, each question's full ranking and actual
    answerer set, the LP objective of every routed pick (as exact float
    hex, not a rounded repr) and each degradation record's
    ``seq:thread:action`` triple.  Detail strings are excluded — they
    are allowed to gain context without invalidating golden digests.
    """
    h = hashlib.sha256()
    h.update(
        f"{report.n_questions_seen}:{report.n_routed}:{report.n_refits};".encode()
    )
    for ranked, actual in report.rankings:
        h.update(",".join(str(int(u)) for u in ranked).encode())
        h.update(b"|")
        h.update(",".join(str(int(u)) for u in sorted(actual)).encode())
        h.update(b";")
    for score in report.routed_scores:
        h.update(float(score).hex().encode())
        h.update(b";")
    if report.degradation is not None:
        for record in report.degradation.records:
            h.update(
                f"{record.seq}:{record.thread_id}:{record.action};".encode()
            )
    return h.hexdigest()


@dataclass
class ScenarioReport:
    """Everything one preset produced across both legs."""

    name: str
    seed: int
    scale: float
    n_threads: int = 0
    n_answers: int = 0
    n_users: int = 0
    digest: str = ""
    accuracy: dict = field(default_factory=dict)
    accuracy_delta: dict = field(default_factory=dict)
    n_routed: int = 0
    n_refits: int = 0
    degradation: dict = field(default_factory=dict)
    n_degradations: int = 0
    latency_ms: dict = field(default_factory=dict)
    n_rejected: int = 0
    query_statuses: dict = field(default_factory=dict)
    distortion: dict = field(default_factory=dict)
    # Replay-only results under alternative engine configs, keyed by
    # engine name (the config axis of the matrix).
    engines: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "n_threads": self.n_threads,
            "n_answers": self.n_answers,
            "n_users": self.n_users,
            "digest": self.digest,
            "accuracy": dict(self.accuracy),
            "accuracy_delta": dict(self.accuracy_delta),
            "n_routed": self.n_routed,
            "n_refits": self.n_refits,
            "degradation": dict(self.degradation),
            "n_degradations": self.n_degradations,
            "latency_ms": dict(self.latency_ms),
            "n_rejected": self.n_rejected,
            "query_statuses": dict(self.query_statuses),
            "distortion": dict(self.distortion),
            "engines": {
                name: dict(result) for name, result in self.engines.items()
            },
        }


def _accuracy(report: OnlineReport) -> dict:
    return {
        "hit_rate_at_1": float(report.hit_rate_at_1),
        "precision_at_3": float(report.precision_at(3)),
        "mrr": float(report.mrr),
        "ndcg_at_5": float(report.ndcg_at(5)),
    }


def _distortion_summary(data: ScenarioData) -> dict:
    out: dict = {}
    if data.staff:
        out["n_staff"] = len(data.staff)
    if data.fresh_users:
        out["n_fresh_users"] = len(data.fresh_users)
    if data.spam_waves:
        out["n_spam_waves"] = len(data.spam_waves)
    for key in ("reattached_answers", "warped_threads"):
        if key in data.info:
            out[key] = int(data.info[key])
    return out


class ScenarioMatrixRunner:
    """Run presets through replay + serving and collect reports.

    ``include_serving=False`` skips the async leg (the replay digest is
    all the golden tests need, and it is the expensive half that matters
    for them).  ``engine_configs`` adds the config axis of the matrix:
    each named :class:`OnlineConfig` replays every preset's stream a
    second time (replay leg only) — e.g. ``SCENARIO_ENGINES`` swaps the
    dense router for two-stage candidate retrieval.  Results are
    deterministic for a given ``(names, seed, scale, configs)`` — the
    runner holds no RNG of its own; all randomness lives in the
    per-preset spawned streams.
    """

    def __init__(
        self,
        names: list[str] | None = None,
        *,
        seed: int = 0,
        scale: float = 1.0,
        predictor_config: PredictorConfig | None = None,
        online_config: OnlineConfig | None = None,
        engine_configs: dict[str, OnlineConfig] | None = None,
        include_serving: bool = True,
    ):
        self.names = list(names) if names is not None else list_scenarios()
        if "baseline" not in self.names:
            self.names.insert(0, "baseline")
        self.seed = seed
        self.scale = scale
        self.predictor_config = predictor_config or SCENARIO_PREDICTOR
        self.online_config = online_config or SCENARIO_ONLINE
        self.engine_configs = dict(engine_configs or {})
        self.include_serving = include_serving

    # -- single preset -------------------------------------------------------

    def replay(
        self, name: str, online_config: OnlineConfig | None = None
    ) -> tuple[ScenarioData, OnlineReport]:
        """The replay leg: guarded loop with the preset's fault plan."""
        data = build_scenario(name, seed=self.seed, scale=self.scale)
        loop = OnlineRecommendationLoop(
            self.predictor_config,
            online_config or self.online_config,
            ResilienceConfig(),
        )
        report = loop.run(data.dataset, data.preset.fault_plan)
        return data, report

    def serve(self, data: ScenarioData) -> dict:
        """The serving leg: traffic through the async stack, summarized."""
        core = ServingCore(self.predictor_config, self.online_config)
        service = RecommendationService(
            core, ServiceConfig(admission=data.preset.admission)
        )
        try:
            service.warm(data.dataset)
            requests = generate_traffic(data.dataset, data.traffic)
            load = run_load(service, requests, clock=VirtualClock())
        finally:
            core.close()
        latency = load.metrics.get("query_latency", {})
        return {
            "latency_ms": {
                key: latency.get(key)
                for key in ("p50_ms", "p95_ms", "p99_ms")
                if key in latency
            },
            "n_rejected": load.n_rejected,
            "query_statuses": dict(load.query_statuses),
        }

    def run_one(
        self, name: str, baseline_accuracy: dict | None = None
    ) -> ScenarioReport:
        data, replay_report = self.replay(name)
        out = ScenarioReport(
            name=name,
            seed=self.seed,
            scale=self.scale,
            n_threads=len(data.dataset),
            n_answers=data.dataset.num_answers,
            n_users=len(data.dataset.users),
            digest=scenario_digest(replay_report),
            accuracy=_accuracy(replay_report),
            n_routed=replay_report.n_routed,
            n_refits=replay_report.n_refits,
            distortion=_distortion_summary(data),
        )
        if replay_report.degradation is not None:
            out.degradation = replay_report.degradation.summary()
            out.n_degradations = len(replay_report.degradation.records)
        if baseline_accuracy:
            out.accuracy_delta = {
                key: out.accuracy[key] - baseline_accuracy[key]
                for key in out.accuracy
            }
        if self.include_serving:
            serving = self.serve(data)
            out.latency_ms = serving["latency_ms"]
            out.n_rejected = serving["n_rejected"]
            out.query_statuses = serving["query_statuses"]
        for engine, config in self.engine_configs.items():
            _, engine_report = self.replay(name, config)
            out.engines[engine] = {
                "digest": scenario_digest(engine_report),
                "accuracy": _accuracy(engine_report),
                "n_routed": engine_report.n_routed,
            }
        return out

    # -- the matrix ----------------------------------------------------------

    def run(self) -> dict:
        """Every preset, baseline first; returns a JSON-ready dict."""
        reports: dict[str, ScenarioReport] = {}
        ordered = ["baseline"] + [n for n in self.names if n != "baseline"]
        baseline = self.run_one("baseline")
        reports["baseline"] = baseline
        for name in ordered[1:]:
            reports[name] = self.run_one(name, baseline.accuracy)
        return {
            "seed": self.seed,
            "scale": self.scale,
            "engines": ["dense", *sorted(self.engine_configs)],
            "scenarios": {
                name: report.as_dict() for name, report in reports.items()
            },
        }
