"""Scenario matrix: seeded cross-platform forum regimes.

See :mod:`~repro.forum.scenarios.presets` for the registry and
:mod:`~repro.forum.scenarios.runner` for the full-stack matrix driver.
"""

from .distortions import (
    AmbiguousReplies,
    ColdStartFlood,
    FlashCrowds,
    StaffPool,
    VoteSpam,
)
from .presets import (
    ScenarioData,
    ScenarioPreset,
    build_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from .runner import (
    SCENARIO_ENGINES,
    SCENARIO_ONLINE,
    SCENARIO_PREDICTOR,
    ScenarioMatrixRunner,
    ScenarioReport,
    scenario_digest,
)

__all__ = [
    "AmbiguousReplies",
    "ColdStartFlood",
    "FlashCrowds",
    "StaffPool",
    "VoteSpam",
    "ScenarioData",
    "ScenarioPreset",
    "build_scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "SCENARIO_ENGINES",
    "SCENARIO_ONLINE",
    "SCENARIO_PREDICTOR",
    "ScenarioMatrixRunner",
    "ScenarioReport",
    "scenario_digest",
]
