"""Scenario presets: named, seeded cross-platform forum regimes.

A :class:`ScenarioPreset` composes a base :class:`~repro.forum.generator.ForumConfig`
with a pipeline of :mod:`~repro.forum.scenarios.distortions`, a traffic
shape for the async serving leg, and an optional
:class:`~repro.core.resilience.FaultPlan` for the resilient replay leg.
:func:`build_scenario` materializes a preset into a
:class:`ScenarioData`: a preprocessed, guard-clean
:class:`~repro.forum.dataset.ForumDataset` plus the metadata the
distortions produced (staff pool, fresh user ids, spam waves).

Every random stream is derived with
:func:`~repro.forum.traffic.scenario_seed_sequence` — content-keyed
``SeedSequence`` spawns — so each preset's forum, distortion and
traffic draws are independent of every other preset: registering,
removing or reordering presets can never change what another preset
generates (the cross-preset stability test pins this).

The registry holds six presets:

``baseline``
    The undistorted forum — the reference every other scenario's
    accuracy metrics are reported against.
``support_desk``
    A small staff pool answers everything; reply links are ambiguous
    and resolved by temporal proximity (chat-like support platforms).
``ebb_and_flow``
    Month-scale popularity waves plus gradual topic drift (interest
    migrating across the topic space over the run).
``flash_crowd``
    Correlated thread bursts on top of bursty traffic with a tight
    admission queue — the overload/shedding regime.
``coldstart_flood``
    Spikes of first-time askers the models have no history for.
``brigading``
    Vote-spam waves inflating answer scores, replayed against a fault
    plan that also corrupts a slice of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from ...core.resilience import FaultPlan
from ...core.serving.ingest import AdmissionConfig
from ..dataset import ForumDataset
from ..generator import ForumConfig, generate_forum
from ..models import Thread
from ..repair import VoteSpamWave
from ..traffic import TrafficConfig, derive_rng, scenario_seed_sequence
from .distortions import (
    AmbiguousReplies,
    ColdStartFlood,
    FlashCrowds,
    StaffPool,
    VoteSpam,
)

__all__ = [
    "ScenarioPreset",
    "ScenarioData",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_scenario",
]

# The common substrate every preset distorts: small enough that the
# full matrix runs in CI, rich enough (heavy activity tail) that the
# predictors have signal to rank with.
_BASE_FORUM = ForumConfig(n_users=300, n_questions=360, activity_tail=1.4)

_BASE_TRAFFIC = TrafficConfig(
    n_askers=120, n_events=30, duration_s=30.0, hours_per_second=0.005
)


@dataclass(frozen=True)
class ScenarioPreset:
    """One named regime: forum shape + distortions + serving load."""

    name: str
    description: str
    forum: ForumConfig = _BASE_FORUM
    distortions: tuple = ()
    traffic: TrafficConfig = _BASE_TRAFFIC
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    # Fault plan for the resilient replay leg; None replays clean.
    fault_plan: FaultPlan | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("preset needs a name")
        # The traffic stream must be keyed by the preset so schedules
        # are independent across presets.
        if self.traffic.scenario != self.name:
            object.__setattr__(
                self, "traffic", replace(self.traffic, scenario=self.name)
            )


@dataclass(frozen=True)
class ScenarioData:
    """A materialized preset: the dataset plus distortion metadata."""

    preset: ScenarioPreset
    dataset: ForumDataset
    traffic: TrafficConfig
    staff: tuple[int, ...] = ()
    fresh_users: tuple[int, ...] = ()
    spam_waves: tuple[VoteSpamWave, ...] = ()
    info: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.preset.name

    def stream(self, chunk_threads: int = 0) -> Iterator[list[Thread]]:
        """Emit the dataset as chronological chunks of threads.

        Pure slicing of the already-built dataset — no randomness, no
        recomputation — so chunked and unchunked emission are
        bit-identical by construction (the property test pins it).
        ``chunk_threads <= 0`` yields one chunk.
        """
        threads = self.dataset.threads
        if chunk_threads <= 0:
            chunk_threads = max(1, len(threads))
        for i in range(0, len(threads), chunk_threads):
            yield threads[i : i + chunk_threads]


_REGISTRY: dict[str, ScenarioPreset] = {}


def register_scenario(preset: ScenarioPreset) -> ScenarioPreset:
    """Add a preset to the registry; duplicate names are an error."""
    if preset.name in _REGISTRY:
        raise ValueError(f"scenario {preset.name!r} already registered")
    _REGISTRY[preset.name] = preset
    return preset


def get_scenario(name: str) -> ScenarioPreset:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {list_scenarios()}"
        ) from None


def list_scenarios() -> list[str]:
    """Registered preset names, sorted (registration-order independent)."""
    return sorted(_REGISTRY)


def _scale_forum(config: ForumConfig, scale: float) -> ForumConfig:
    if scale == 1.0:
        return config
    return replace(
        config,
        n_users=max(10, int(config.n_users * scale)),
        n_questions=max(10, int(config.n_questions * scale)),
    )


def build_scenario(
    preset: ScenarioPreset | str, *, seed: int = 0, scale: float = 1.0
) -> ScenarioData:
    """Materialize a preset deterministically.

    ``scale`` shrinks/grows the forum (users and questions together)
    for smoke runs versus full benches.  The pipeline is: generate the
    base forum on the preset's spawned stream, apply raw-stage
    distortions, run the paper's Sec. III-A preprocessing, then apply
    final-stage distortions (vote spam).  The result is clean by
    construction: unique ids, chronological order, no self-answers, and
    every answer strictly after its question — so a StreamGuard admits
    all of it untouched.
    """
    if isinstance(preset, str):
        preset = get_scenario(preset)
    if scale <= 0:
        raise ValueError("scale must be positive")
    forum_seed = int(
        scenario_seed_sequence(seed, f"{preset.name}/forum").generate_state(1)[0]
    )
    forum = generate_forum(_scale_forum(preset.forum, scale), seed=forum_seed)
    threads = list(forum.dataset)
    rng = derive_rng(seed, f"{preset.name}/distort")
    info: dict = {}
    for distortion in preset.distortions:
        if distortion.stage != "raw":
            continue
        threads, extra = distortion.apply(threads, rng)
        info.update(extra)
    dataset, _ = ForumDataset(threads).preprocess()
    for distortion in preset.distortions:
        if distortion.stage != "final":
            continue
        final_threads, extra = distortion.apply(list(dataset), rng)
        dataset = ForumDataset(final_threads)
        info.update(extra)
    return ScenarioData(
        preset=preset,
        dataset=dataset,
        traffic=replace(preset.traffic, seed=seed),
        staff=tuple(info.get("staff", ())),
        fresh_users=tuple(info.get("fresh_users", ())),
        spam_waves=tuple(info.get("spam_waves", ())),
        info=info,
    )


# -- the built-in matrix ------------------------------------------------------

register_scenario(
    ScenarioPreset(
        name="baseline",
        description="Undistorted forum; the accuracy reference point.",
    )
)

register_scenario(
    ScenarioPreset(
        name="support_desk",
        description=(
            "Small staff pool answers everything; ambiguous reply links "
            "resolved by temporal proximity."
        ),
        distortions=(
            StaffPool(n_staff=10),
            AmbiguousReplies(rate=0.2, window_hours=8.0),
        ),
    )
)

register_scenario(
    ScenarioPreset(
        name="ebb_and_flow",
        description=(
            "Month-scale popularity waves and topic drift: platform "
            "interest migrates over the run."
        ),
        forum=replace(
            _BASE_FORUM,
            popularity_wave_amplitude=0.6,
            popularity_wave_period_days=10.0,
            topic_drift_rate=1.0,
        ),
    )
)

register_scenario(
    ScenarioPreset(
        name="flash_crowd",
        description=(
            "Correlated thread bursts plus clumped traffic against a "
            "tight admission queue — the overload regime."
        ),
        distortions=(FlashCrowds(n_bursts=3, width_hours=1.5, fraction=0.6),),
        traffic=replace(
            _BASE_TRAFFIC,
            n_bursts=3,
            burst_fraction=0.95,
            burst_width_s=0.02,
        ),
        admission=AdmissionConfig(
            max_pending_events=256, max_pending_queries=4
        ),
        fault_plan=FaultPlan(seed=11, out_of_order_rate=0.05),
    )
)

register_scenario(
    ScenarioPreset(
        name="coldstart_flood",
        description=(
            "Spikes of first-time askers with no history for the "
            "models to lean on."
        ),
        distortions=(ColdStartFlood(spikes=((0.3, 0.4), (0.7, 0.8))),),
    )
)

register_scenario(
    ScenarioPreset(
        name="brigading",
        description=(
            "Vote-spam waves inflate answer scores; the stream also "
            "carries injected corruption."
        ),
        distortions=(VoteSpam(waves=((0.2, 0.35, 6), (0.55, 0.7, 9))),),
        fault_plan=FaultPlan(
            seed=13, missing_field_rate=0.04, duplicate_rate=0.04
        ),
    )
)
