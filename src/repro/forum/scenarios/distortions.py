"""Parameterized distortions that turn a synthetic forum into a regime.

Each distortion is a small frozen spec with an ``apply(threads, rng)``
method: given the raw generated thread list and a seeded generator it
returns a new thread list plus a metadata dict (staff ids, fresh user
ids, spam waves, ...) that :func:`~repro.forum.scenarios.presets.build_scenario`
folds into the :class:`~repro.forum.scenarios.presets.ScenarioData`.
Distortions never mutate their input posts — every rewrite goes through
``dataclasses.replace`` — and they preserve the stream-clock invariants
the resilient serving path checks (no self-answers, answers at or after
their question, unique post ids), so distorted streams replay through a
:class:`~repro.core.resilience.StreamGuard` without a single repair and
the guarded-equals-plain differential tests hold on every preset.

Two stages: ``raw`` distortions run before Sec. III-A preprocessing
(they reshape structure, so the paper's filters get the final say);
``final`` distortions run after (vote spam must not change which
duplicate answer preprocessing keeps, or stripping it would not recover
the clean dataset bit-for-bit).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace

import numpy as np

from ..models import Thread
from ..repair import VoteSpamWave, apply_vote_spam

__all__ = [
    "StaffPool",
    "AmbiguousReplies",
    "FlashCrowds",
    "ColdStartFlood",
    "VoteSpam",
]


def _duration(threads: list[Thread]) -> float:
    return max((t.created_at for t in threads), default=0.0)


@dataclass(frozen=True)
class StaffPool:
    """Support-desk staffing: all answers come from a small fixed pool.

    Staff are the ``n_staff`` most prolific answerers of the undistorted
    forum (ties broken by lowest id, so the pool is deterministic given
    the forum alone); every answer is re-authored to a staff member
    drawn uniformly, skipping the thread's asker so no self-answer can
    appear.  Duplicate per-user answers this creates are collapsed by
    preprocessing exactly as on real forums.
    """

    stage = "raw"

    n_staff: int = 10

    def __post_init__(self):
        if self.n_staff < 2:
            raise ValueError("n_staff must be >= 2 (asker exclusion)")

    def apply(
        self, threads: list[Thread], rng: np.random.Generator
    ) -> tuple[list[Thread], dict]:
        counts: Counter[int] = Counter()
        for t in threads:
            for a in t.answers:
                counts[a.author] += 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        staff = tuple(u for u, _ in ranked[: self.n_staff])
        if len(staff) < 2:
            return list(threads), {"staff": staff}
        out: list[Thread] = []
        for t in threads:
            pool = [u for u in staff if u != t.asker]
            answers = [
                replace(a, author=int(pool[rng.integers(len(pool))]))
                for a in t.answers
            ]
            out.append(Thread(question=t.question, answers=answers))
        return out, {"staff": staff}


@dataclass(frozen=True)
class AmbiguousReplies:
    """Ambiguous reply links resolved by temporal proximity.

    On chat-like support platforms an answer often does not reference
    its question explicitly; link resolution falls back to "the most
    recent question this could be replying to".  Each answer is, with
    probability ``rate``, reattached to the *latest* question created
    strictly before the answer inside ``window_hours`` whose asker is
    not the answer's author — the temporal-proximity rule.  Reattached
    answers keep their timestamps, so they always land at or after
    their new question and the stream stays guard-clean.
    """

    stage = "raw"

    rate: float = 0.2
    window_hours: float = 8.0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.window_hours <= 0:
            raise ValueError("window_hours must be positive")

    def apply(
        self, threads: list[Thread], rng: np.random.Generator
    ) -> tuple[list[Thread], dict]:
        order = sorted(threads, key=lambda t: (t.created_at, t.thread_id))
        q_times = np.array([t.created_at for t in order])
        by_thread: dict[int, list] = {t.thread_id: [] for t in threads}
        moved = 0
        for t in threads:
            for a in t.answers:
                target = t.thread_id
                if rng.uniform() < self.rate:
                    picked = self._nearest(order, q_times, a)
                    if picked is not None:
                        target = picked
                        if target != t.thread_id:
                            moved += 1
                if target == t.thread_id:
                    by_thread[target].append(a)
                else:
                    by_thread[target].append(replace(a, thread_id=target))
        out = [
            Thread(question=t.question, answers=by_thread[t.thread_id])
            for t in threads
        ]
        return out, {"reattached_answers": moved}

    def _nearest(self, order, q_times, answer):
        """Latest admissible question id before the answer, or None."""
        hi = int(np.searchsorted(q_times, answer.timestamp, side="left"))
        lo_time = answer.timestamp - self.window_hours
        for j in range(hi - 1, -1, -1):
            if q_times[j] < lo_time:
                break
            if order[j].asker != answer.author:
                return order[j].thread_id
        return None


@dataclass(frozen=True)
class FlashCrowds:
    """Correlated burst arrivals: threads pile onto a few instants.

    A ``fraction`` of threads is re-timed onto one of ``n_bursts``
    burst centres with Laplace jitter of scale ``width_hours``.  The
    *whole thread* shifts — answers move by the same delta as their
    question — so response delays (the quantity the timing model
    predicts) are untouched; only the arrival process clumps, which is
    what overloads admission control downstream.
    """

    stage = "raw"

    n_bursts: int = 3
    width_hours: float = 1.5
    fraction: float = 0.6

    def __post_init__(self):
        if self.n_bursts < 1:
            raise ValueError("n_bursts must be >= 1")
        if self.width_hours <= 0:
            raise ValueError("width_hours must be positive")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def apply(
        self, threads: list[Thread], rng: np.random.Generator
    ) -> tuple[list[Thread], dict]:
        duration = _duration(threads)
        centres = rng.uniform(0.0, duration, size=self.n_bursts)
        out: list[Thread] = []
        warped = 0
        for t in threads:
            if rng.uniform() >= self.fraction:
                out.append(t)
                continue
            centre = float(centres[rng.integers(self.n_bursts)])
            target = centre + float(rng.laplace(0.0, self.width_hours))
            target = float(np.clip(target, 0.0, duration))
            delta = target - t.created_at
            out.append(
                Thread(
                    question=replace(t.question, timestamp=target),
                    answers=[
                        replace(a, timestamp=a.timestamp + delta)
                        for a in t.answers
                    ],
                )
            )
            warped += 1
        return out, {"warped_threads": warped, "burst_centres": tuple(centres)}


@dataclass(frozen=True)
class ColdStartFlood:
    """New-user arrival spikes: questions in spike windows come from
    fresh ids the models have never seen.

    ``spikes`` are ``(start, end)`` fractions of the forum duration.
    Each question created inside a spike is re-authored to a brand-new
    user id above every id in the base forum, one id per question (a
    flood of first-time askers).  Fresh ids are assigned in chronological
    question order, so the mapping is deterministic and the fresh id
    space is disjoint from the base population by construction — the
    invariant the property tests pin.
    """

    stage = "raw"

    spikes: tuple[tuple[float, float], ...] = ((0.3, 0.4), (0.7, 0.8))

    def __post_init__(self):
        for start, end in self.spikes:
            if not 0.0 <= start < end <= 1.0:
                raise ValueError("spike windows must satisfy 0 <= start < end <= 1")

    def apply(
        self, threads: list[Thread], rng: np.random.Generator
    ) -> tuple[list[Thread], dict]:
        duration = _duration(threads)
        windows = [
            (start * duration, end * duration) for start, end in self.spikes
        ]
        base_users = {t.asker for t in threads} | {
            a.author for t in threads for a in t.answers
        }
        next_user = max(base_users, default=0) + 1
        replaced: dict[int, int] = {}  # thread_id -> fresh asker
        for t in sorted(threads, key=lambda t: (t.created_at, t.thread_id)):
            if any(lo <= t.created_at < hi for lo, hi in windows):
                replaced[t.thread_id] = next_user
                next_user += 1
        out: list[Thread] = []
        for t in threads:
            fresh = replaced.get(t.thread_id)
            if fresh is None:
                out.append(t)
                continue
            out.append(
                Thread(
                    question=replace(t.question, author=fresh),
                    answers=list(t.answers),
                )
            )
        return out, {"fresh_users": tuple(sorted(replaced.values()))}


@dataclass(frozen=True)
class VoteSpam:
    """Brigading: flat vote boosts on answers inside spam windows.

    ``waves`` are ``(start, end, boost)`` with the window as fractions
    of the forum duration.  Runs *after* preprocessing (stage
    ``final``) so the spam cannot change which duplicate answer the
    Sec. III-A filter keeps — which makes
    :func:`~repro.forum.repair.strip_vote_spam` with the recorded waves
    an exact inverse, the conservation property the brigading tests
    assert.
    """

    stage = "final"

    waves: tuple[tuple[float, float, int], ...] = ((0.2, 0.35, 6),)

    def __post_init__(self):
        for start, end, boost in self.waves:
            if not 0.0 <= start < end:
                raise ValueError("wave windows must satisfy 0 <= start < end")
            if boost < 1:
                raise ValueError("wave boost must be >= 1")

    def apply(
        self, threads: list[Thread], rng: np.random.Generator
    ) -> tuple[list[Thread], dict]:
        horizon = max(
            (p.timestamp for t in threads for p in t.posts), default=0.0
        )
        waves = tuple(
            VoteSpamWave(start * horizon, end * horizon, boost)
            for start, end, boost in self.waves
        )
        return apply_vote_spam(list(threads), waves), {"spam_waves": waves}
