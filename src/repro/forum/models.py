"""Forum data model.

Mirrors the paper's notation (Sec. II-A): a forum is a set of threads;
thread ``q`` consists of posts ``p_q0`` (the question) and ``p_q1, ...``
(the answers).  Each post has a creator ``u(p)``, a timestamp ``t(p)``
and net votes ``v(p)``; bodies carry HTML with ``<code>`` spans so the
word/code split of Sec. II-B applies.

Timestamps are hours since the start of the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Post", "Thread", "HOURS_PER_DAY"]

HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class Post:
    """A single forum post (question or answer)."""

    post_id: int
    thread_id: int
    author: int
    timestamp: float
    votes: int
    body: str
    is_question: bool

    def __post_init__(self):
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


@dataclass
class Thread:
    """A question post plus its answers, kept sorted by time."""

    question: Post
    answers: list[Post] = field(default_factory=list)

    def __post_init__(self):
        if not self.question.is_question:
            raise ValueError("thread root must be a question post")
        for a in self.answers:
            self._check_answer(a)
        self.answers.sort(key=lambda p: p.timestamp)

    def _check_answer(self, post: Post) -> None:
        if post.is_question:
            raise ValueError("answers must not be question posts")
        if post.thread_id != self.thread_id:
            raise ValueError("answer belongs to a different thread")

    @property
    def thread_id(self) -> int:
        return self.question.thread_id

    @property
    def asker(self) -> int:
        """The question creator u(p_q0)."""
        return self.question.author

    @property
    def answerers(self) -> list[int]:
        """Distinct answerer ids in order of first answer."""
        seen: list[int] = []
        for a in self.answers:
            if a.author not in seen:
                seen.append(a.author)
        return seen

    @property
    def created_at(self) -> float:
        """t(p_q0), the question timestamp."""
        return self.question.timestamp

    @property
    def posts(self) -> list[Post]:
        """Question followed by answers (the p_qn sequence)."""
        return [self.question, *self.answers]

    def add_answer(self, post: Post) -> None:
        """Insert an answer keeping chronological order."""
        self._check_answer(post)
        self.answers.append(post)
        self.answers.sort(key=lambda p: p.timestamp)

    def response_time(self, user: int) -> float:
        """Elapsed hours before ``user``'s first answer; KeyError if none."""
        for a in self.answers:
            if a.author == user:
                return a.timestamp - self.created_at
        raise KeyError(f"user {user} did not answer thread {self.thread_id}")

    def answer_by(self, user: int) -> Post:
        """The (first) answer posted by ``user``; KeyError if none."""
        for a in self.answers:
            if a.author == user:
                return a
        raise KeyError(f"user {user} did not answer thread {self.thread_id}")
