"""Loaders for real Stack Exchange data.

The paper collected its dataset through the Stack Exchange API
(questions with the "Python" tag over 30 days).  These loaders accept
the two standard offline formats so the pipeline can run on real data
when it is available:

* :func:`load_posts_xml` — the ``Posts.xml`` file from the official
  Stack Exchange data dump (``PostTypeId`` 1 = question, 2 = answer);
* :func:`load_api_json` — the JSON returned by the API's ``/questions``
  endpoint with the ``withbody`` filter and answers nested per
  question.

Both produce a :class:`~repro.forum.dataset.ForumDataset` with
timestamps converted to hours since the earliest question, matching
the synthetic generator's conventions.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from datetime import datetime, timezone
from pathlib import Path

from .dataset import ForumDataset
from .models import Post, Thread

__all__ = ["load_posts_xml", "load_api_json"]

_ANONYMOUS_USER = -1


def _parse_dump_timestamp(value: str) -> float:
    """Stack Exchange dump timestamps: ``2018-06-03T10:01:02.347``."""
    dt = datetime.fromisoformat(value)
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt.timestamp()


def _tags_match(tags_attr: str, required_tag: str | None) -> bool:
    if required_tag is None:
        return True
    # Dump format: "<python><pandas>"; be tolerant of bare "python|pandas".
    tags = tags_attr.replace("><", "|").strip("<>").split("|") if tags_attr else []
    return required_tag.lower() in (t.lower() for t in tags)


def load_posts_xml(
    path: str | Path, *, required_tag: str | None = None
) -> ForumDataset:
    """Load a data-dump ``Posts.xml`` into a forum dataset.

    Questions missing an owner, and answers whose parent question was
    filtered out or missing, are skipped.  Timestamps are rebased to
    hours after the earliest kept question.
    """
    path = Path(path)
    questions: dict[int, dict] = {}
    answers: list[dict] = []
    for _, elem in ET.iterparse(str(path), events=("end",)):
        if elem.tag != "row":
            continue
        post_type = elem.get("PostTypeId")
        try:
            record = {
                "post_id": int(elem.get("Id")),
                "epoch": _parse_dump_timestamp(elem.get("CreationDate")),
                "votes": int(elem.get("Score", "0")),
                "body": elem.get("Body", ""),
                "author": int(elem.get("OwnerUserId", _ANONYMOUS_USER)),
            }
        except (TypeError, ValueError):
            elem.clear()
            continue
        if post_type == "1":
            if _tags_match(elem.get("Tags", ""), required_tag):
                questions[record["post_id"]] = record
        elif post_type == "2":
            parent = elem.get("ParentId")
            if parent is not None:
                record["parent_id"] = int(parent)
                answers.append(record)
        elem.clear()
    if not questions:
        return ForumDataset([])
    origin = min(q["epoch"] for q in questions.values())

    def hours(epoch: float) -> float:
        return max((epoch - origin) / 3600.0, 0.0)

    threads: dict[int, Thread] = {}
    for qid, q in questions.items():
        threads[qid] = Thread(
            question=Post(
                post_id=q["post_id"],
                thread_id=qid,
                author=q["author"],
                timestamp=hours(q["epoch"]),
                votes=q["votes"],
                body=q["body"],
                is_question=True,
            )
        )
    for a in answers:
        thread = threads.get(a["parent_id"])
        if thread is None:
            continue
        thread.add_answer(
            Post(
                post_id=a["post_id"],
                thread_id=a["parent_id"],
                author=a["author"],
                timestamp=hours(a["epoch"]),
                votes=a["votes"],
                body=a["body"],
                is_question=False,
            )
        )
    return ForumDataset(threads.values())


def load_api_json(path: str | Path) -> ForumDataset:
    """Load Stack Exchange API ``/questions`` JSON (answers nested).

    Expects the standard envelope ``{"items": [...]}`` or a bare list
    of question objects, each carrying ``question_id``,
    ``creation_date`` (epoch seconds), ``score``, ``body``,
    ``owner.user_id`` and optionally ``answers`` with the same fields
    (``answer_id`` instead of ``question_id``).
    """
    path = Path(path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    items = payload.get("items", payload) if isinstance(payload, dict) else payload
    if not isinstance(items, list):
        raise ValueError("expected a list of questions or an 'items' envelope")
    if not items:
        return ForumDataset([])
    origin = min(float(q["creation_date"]) for q in items)

    def hours(epoch: float) -> float:
        return max((epoch - origin) / 3600.0, 0.0)

    def owner_id(obj: dict) -> int:
        owner = obj.get("owner") or {}
        return int(owner.get("user_id", _ANONYMOUS_USER))

    threads = []
    for q in items:
        qid = int(q["question_id"])
        thread = Thread(
            question=Post(
                post_id=qid,
                thread_id=qid,
                author=owner_id(q),
                timestamp=hours(float(q["creation_date"])),
                votes=int(q.get("score", 0)),
                body=str(q.get("body", "")),
                is_question=True,
            )
        )
        for a in q.get("answers", []):
            thread.add_answer(
                Post(
                    post_id=int(a["answer_id"]),
                    thread_id=qid,
                    author=owner_id(a),
                    timestamp=hours(float(a["creation_date"])),
                    votes=int(a.get("score", 0)),
                    body=str(a.get("body", "")),
                    is_question=False,
                )
            )
        threads.append(thread)
    return ForumDataset(threads)
