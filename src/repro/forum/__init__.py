"""Forum substrate: data model, preprocessing, synthetic generator, stats."""

from .dataset import AnswerRecord, ForumDataset, PreprocessReport
from .generator import ForumConfig, SyntheticForum, generate_forum
from .io import load_dataset, save_dataset
from .models import HOURS_PER_DAY, Post, Thread
from .stackexchange import load_api_json, load_posts_xml
from .streaming import (
    ScaleIngestReport,
    StreamChunk,
    UserGroundTruth,
    ingest_to_shards,
    sample_users,
    stream_forum_chunks,
)
from .repair import (
    RepairReport,
    VoteSpamWave,
    apply_vote_spam,
    repair_dataset,
    strip_vote_spam,
)
from .traffic import (
    TrafficConfig,
    TrafficRequest,
    derive_rng,
    generate_traffic,
    scenario_seed_sequence,
)
from .validation import ValidationIssue, ValidationReport, validate_dataset
from .stats import (
    DatasetSummary,
    GraphSummary,
    answer_activity_cdf,
    ecdf,
    median_response_time_by_activity,
    summarize_dataset,
    summarize_graphs,
    vote_time_correlation,
)

__all__ = [
    "AnswerRecord",
    "ForumDataset",
    "PreprocessReport",
    "ForumConfig",
    "SyntheticForum",
    "generate_forum",
    "load_dataset",
    "save_dataset",
    "load_api_json",
    "load_posts_xml",
    "ScaleIngestReport",
    "StreamChunk",
    "UserGroundTruth",
    "ingest_to_shards",
    "sample_users",
    "stream_forum_chunks",
    "ValidationIssue",
    "ValidationReport",
    "validate_dataset",
    "RepairReport",
    "repair_dataset",
    "VoteSpamWave",
    "apply_vote_spam",
    "strip_vote_spam",
    "TrafficConfig",
    "TrafficRequest",
    "generate_traffic",
    "derive_rng",
    "scenario_seed_sequence",
    "HOURS_PER_DAY",
    "Post",
    "Thread",
    "DatasetSummary",
    "GraphSummary",
    "answer_activity_cdf",
    "ecdf",
    "median_response_time_by_activity",
    "summarize_dataset",
    "summarize_graphs",
    "vote_time_correlation",
]
