"""Forum substrate: data model, preprocessing, synthetic generator, stats."""

from .dataset import AnswerRecord, ForumDataset, PreprocessReport
from .generator import ForumConfig, SyntheticForum, generate_forum
from .io import load_dataset, save_dataset
from .models import HOURS_PER_DAY, Post, Thread
from .stackexchange import load_api_json, load_posts_xml
from .streaming import (
    ScaleIngestReport,
    StreamChunk,
    UserGroundTruth,
    ingest_to_shards,
    sample_users,
    stream_forum_chunks,
)
from .repair import RepairReport, repair_dataset
from .traffic import TrafficConfig, TrafficRequest, generate_traffic
from .validation import ValidationIssue, ValidationReport, validate_dataset
from .stats import (
    DatasetSummary,
    GraphSummary,
    answer_activity_cdf,
    ecdf,
    median_response_time_by_activity,
    summarize_dataset,
    summarize_graphs,
    vote_time_correlation,
)

__all__ = [
    "AnswerRecord",
    "ForumDataset",
    "PreprocessReport",
    "ForumConfig",
    "SyntheticForum",
    "generate_forum",
    "load_dataset",
    "save_dataset",
    "load_api_json",
    "load_posts_xml",
    "ScaleIngestReport",
    "StreamChunk",
    "UserGroundTruth",
    "ingest_to_shards",
    "sample_users",
    "stream_forum_chunks",
    "ValidationIssue",
    "ValidationReport",
    "validate_dataset",
    "RepairReport",
    "repair_dataset",
    "TrafficConfig",
    "TrafficRequest",
    "generate_traffic",
    "HOURS_PER_DAY",
    "Post",
    "Thread",
    "DatasetSummary",
    "GraphSummary",
    "answer_activity_cdf",
    "ecdf",
    "median_response_time_by_activity",
    "summarize_dataset",
    "summarize_graphs",
    "vote_time_correlation",
]
