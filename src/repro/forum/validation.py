"""Dataset integrity validation.

Real dumps arrive with defects — answers timestamped before their
questions, duplicated post ids, askers answering themselves.  The
validator reports every violation so loaders and the CLI can fail fast
(or callers can inspect and repair).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .dataset import ForumDataset

__all__ = ["ValidationIssue", "ValidationReport", "validate_dataset"]


@dataclass(frozen=True)
class ValidationIssue:
    """One integrity violation."""

    code: str
    thread_id: int
    detail: str


@dataclass
class ValidationReport:
    """All violations found in a dataset."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def by_code(self, code: str) -> list[ValidationIssue]:
        return [i for i in self.issues if i.code == code]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.code] = counts.get(issue.code, 0) + 1
        return counts


def validate_dataset(dataset: ForumDataset) -> ValidationReport:
    """Check structural invariants; returns a report (never raises).

    Codes produced:

    * ``duplicate_post_id`` — a post id appears more than once;
    * ``answer_before_question`` — an answer predates its question;
    * ``self_answer`` — the asker answered their own question;
    * ``negative_timestamp`` — a post timestamp below zero (should be
      impossible via the data model, checked for belt and braces);
    * ``nonfinite_timestamp`` — a NaN/inf post timestamp (NaN slips
      past the data model's ``timestamp < 0`` check, so the validator
      must catch it before featurization does);
    * ``nonfinite_votes`` — a NaN/inf vote count;
    * ``empty_body`` — a post with a completely empty body.
    """
    report = ValidationReport()
    seen_post_ids: dict[int, int] = {}
    for thread in dataset:
        for post in thread.posts:
            if post.post_id in seen_post_ids:
                report.issues.append(
                    ValidationIssue(
                        "duplicate_post_id",
                        thread.thread_id,
                        f"post {post.post_id} already seen in thread "
                        f"{seen_post_ids[post.post_id]}",
                    )
                )
            else:
                seen_post_ids[post.post_id] = thread.thread_id
            if post.timestamp < 0:
                report.issues.append(
                    ValidationIssue(
                        "negative_timestamp",
                        thread.thread_id,
                        f"post {post.post_id} at t={post.timestamp}",
                    )
                )
            if not math.isfinite(post.timestamp):
                report.issues.append(
                    ValidationIssue(
                        "nonfinite_timestamp",
                        thread.thread_id,
                        f"post {post.post_id} at t={post.timestamp}",
                    )
                )
            if not math.isfinite(float(post.votes)):
                report.issues.append(
                    ValidationIssue(
                        "nonfinite_votes",
                        thread.thread_id,
                        f"post {post.post_id} has votes={post.votes}",
                    )
                )
            if not post.body.strip():
                report.issues.append(
                    ValidationIssue(
                        "empty_body",
                        thread.thread_id,
                        f"post {post.post_id} has no body text",
                    )
                )
        for answer in thread.answers:
            if answer.timestamp < thread.created_at:
                report.issues.append(
                    ValidationIssue(
                        "answer_before_question",
                        thread.thread_id,
                        f"answer {answer.post_id} at {answer.timestamp} "
                        f"predates question at {thread.created_at}",
                    )
                )
            if answer.author == thread.asker:
                report.issues.append(
                    ValidationIssue(
                        "self_answer",
                        thread.thread_id,
                        f"user {answer.author} answered their own question",
                    )
                )
    return report
